// Distributed load plane tests (src/load/dist/): the cross-process
// equivalence battery — 1×8 ≡ 2×4 ≡ 4×2 worker×shard splits produce
// byte-identical merged rollups and outcome digests, clean and under
// seeded faults — plus the protocol-abuse and failure-path suite: every
// malformed frame, hostile length, version mismatch, duplicate rank, and
// mid-run worker death must end in a fast, attributed failure, never a
// hang. Wire-format strictness (snapshot and workload round-trips,
// malformed-payload rejection) is covered here too, since the equivalence
// guarantee is only as strong as the codec underneath it.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "load/dist/driver.hpp"
#include "load/dist/protocol.hpp"
#include "load/dist/worker.hpp"
#include "load/sharded_runtime.hpp"
#include "net/framed_rpc.hpp"
#include "net/framing.hpp"
#include "obs/metrics.hpp"
#include "obs/snapshot.hpp"
#include "util/bytes.hpp"

namespace cmc::load {
namespace {

using Clock = std::chrono::steady_clock;

WorkloadSpec smallWorkload(std::uint64_t seed, double fault_fraction = 0.0) {
  WorkloadSpec workload;
  workload.master_seed = seed;
  workload.calls = 48;
  workload.arrivals_per_s = 120.0;
  workload.flowlink_fraction = 0.5;
  workload.fault_fraction = fault_fraction;
  return workload;
}

struct LocalRun {
  std::string rollup_json;
  std::uint64_t digest = 0;
  std::size_t converged = 0;
  std::size_t clean = 0;
};

// Single-process reference at 8 shards; by the PR 5 contract its rollup is
// what ANY shard count — and so any worker × shard split — must reproduce.
LocalRun runLocal(const WorkloadSpec& workload) {
  LoadConfig config;
  config.shards = 8;
  ShardedRuntime runtime(config);
  runtime.run(workload);
  LocalRun out;
  out.rollup_json = runtime.metricsJson();
  std::vector<dist::DistOutcome> outcomes;
  outcomes.reserve(runtime.outcomes().size());
  for (const CallOutcome& outcome : runtime.outcomes()) {
    outcomes.push_back(dist::toDistOutcome(outcome));
  }
  out.digest = dist::digestOutcomes(outcomes);
  out.converged = runtime.convergedCount();
  out.clean = runtime.cleanTeardownCount();
  return out;
}

// Drive a full distributed run with in-process DistWorker threads speaking
// the real TCP protocol against the driver's ephemeral port.
dist::DistResult runDistributed(const WorkloadSpec& workload,
                                std::size_t workers, std::size_t shards,
                                dist::DriverConfig cfg = {}) {
  cfg.workers = workers;
  cfg.shards = shards;
  dist::DistDriver driver(std::move(cfg));
  EXPECT_TRUE(driver.ok());
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (std::size_t rank = 0; rank < workers; ++rank) {
    threads.emplace_back([port = driver.port(), rank]() {
      dist::WorkerConfig wc;
      wc.port = port;
      wc.rank = static_cast<std::uint32_t>(rank);
      dist::DistWorker worker(wc);
      EXPECT_EQ(worker.run(), 0) << "rank " << rank << ": " << worker.error();
    });
  }
  dist::DistResult result = driver.run(workload);
  for (std::thread& t : threads) t.join();
  return result;
}

void expectMatchesLocal(const dist::DistResult& result, const LocalRun& local) {
  ASSERT_TRUE(result.ok) << result.error;
  EXPECT_EQ(result.rollup_json, local.rollup_json);
  EXPECT_EQ(result.outcome_digest, local.digest);
  EXPECT_EQ(result.converged, local.converged);
  EXPECT_EQ(result.clean_teardowns, local.clean);
}

// ------------------------------------------------------- snapshot wire form

obs::MetricsSnapshot sampleSnapshot() {
  obs::MetricsRegistry reg;
  reg.counter("load.calls").add(7);
  reg.counter("load.converged").add(6);
  reg.gauge("depth").set(9);
  reg.gauge("depth").set(3);
  reg.histogram("load.call_setup_us").observe(120);
  reg.histogram("load.call_setup_us").observe(340'000);
  return obs::MetricsSnapshot::capture(reg, /*wall_ms=*/17);
}

TEST(SnapshotWire, RoundTripReserializesByteIdentical) {
  const obs::MetricsSnapshot snapshot = sampleSnapshot();
  ByteWriter first;
  obs::serializeSnapshot(snapshot, first);
  ByteReader reader(first.bytes());
  auto parsed = obs::deserializeSnapshot(reader);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(reader.atEnd());
  EXPECT_EQ(parsed->wall_ms, 17);
  EXPECT_EQ(parsed->counter("load.calls"), 7u);
  EXPECT_EQ(parsed->gauges.at("depth").value, 3);
  EXPECT_EQ(parsed->gauges.at("depth").max, 9);
  ASSERT_NE(parsed->histogram("load.call_setup_us"), nullptr);
  EXPECT_EQ(parsed->histogram("load.call_setup_us")->count, 2u);
  // Canonical encoding: parse → re-serialize reproduces the bytes.
  ByteWriter second;
  obs::serializeSnapshot(*parsed, second);
  EXPECT_EQ(first.bytes(), second.bytes());
  // And the JSON view (the CI byte-compare surface) survives the trip.
  EXPECT_EQ(parsed->json(), snapshot.json());
}

TEST(SnapshotWire, TruncationAnywhereIsRejected) {
  const obs::MetricsSnapshot snapshot = sampleSnapshot();
  ByteWriter out;
  obs::serializeSnapshot(snapshot, out);
  const std::vector<std::uint8_t>& wire = out.bytes();
  // Every proper prefix must fail — this sweeps truncations inside the
  // histogram bucket array as well as mid-name and mid-header cuts.
  for (std::size_t len = 0; len < wire.size(); ++len) {
    ByteReader reader(wire.data(), len);
    EXPECT_FALSE(obs::deserializeSnapshot(reader).has_value())
        << "prefix of " << len << " bytes parsed";
  }
}

TEST(SnapshotWire, NameCollisionsAndDisorderAreRejected) {
  auto counters = [](std::initializer_list<const char*> names) {
    ByteWriter out;
    out.u64(0);  // wall_ms
    out.u32(static_cast<std::uint32_t>(names.size()));
    for (const char* name : names) {
      out.str(name);
      out.u64(1);
    }
    out.u32(0);  // gauges
    out.u32(0);  // histograms
    return out;
  };
  ByteWriter dup = counters({"load.calls", "load.calls"});
  ByteReader dup_reader(dup.bytes());
  EXPECT_FALSE(obs::deserializeSnapshot(dup_reader).has_value());

  ByteWriter unsorted = counters({"b.second", "a.first"});
  ByteReader unsorted_reader(unsorted.bytes());
  EXPECT_FALSE(obs::deserializeSnapshot(unsorted_reader).has_value());

  ByteWriter sorted = counters({"a.first", "b.second"});
  ByteReader sorted_reader(sorted.bytes());
  EXPECT_TRUE(obs::deserializeSnapshot(sorted_reader).has_value());
}

TEST(SnapshotWire, WrongBucketCountIsRejected) {
  ByteWriter out;
  out.u64(0);
  out.u32(0);  // counters
  out.u32(0);  // gauges
  out.u32(1);  // one histogram...
  out.str("h");
  out.u64(1);                             // count
  out.u64(64);                            // sum
  out.u64(64);                            // min
  out.u64(64);                            // max
  out.u32(obs::Histogram::kBuckets - 1);  // ...declaring too few buckets
  for (std::size_t i = 0; i + 1 < obs::Histogram::kBuckets; ++i) out.u64(0);
  ByteReader reader(out.bytes());
  EXPECT_FALSE(obs::deserializeSnapshot(reader).has_value());
}

// ---------------------------------------------------------- workload + verbs

TEST(DistCodec, WorkloadRoundTripsAndHashPinsEveryField) {
  WorkloadSpec spec = smallWorkload(99, 0.25);
  spec.fault_spec.drop_rate = 0.33;
  ByteWriter out;
  dist::serializeWorkload(spec, out);
  ByteReader in(out.bytes());
  auto parsed = dist::deserializeWorkload(in);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_TRUE(in.atEnd());
  EXPECT_EQ(parsed->master_seed, spec.master_seed);
  EXPECT_EQ(parsed->calls, spec.calls);
  EXPECT_EQ(parsed->arrivals_per_s, spec.arrivals_per_s);
  EXPECT_EQ(parsed->fault_fraction, spec.fault_fraction);
  EXPECT_EQ(parsed->fault_spec.drop_rate, spec.fault_spec.drop_rate);
  EXPECT_EQ(dist::workloadHash(*parsed), dist::workloadHash(spec));

  WorkloadSpec tweaked = spec;
  tweaked.fault_spec.refresh_interval = SimDuration{1};
  EXPECT_NE(dist::workloadHash(tweaked), dist::workloadHash(spec));
}

TEST(DistCodec, HelloRejectsBadMagicAndTrailingBytes) {
  const dist::Hello hello{dist::kMagic, dist::kVersion, 3};
  auto body = dist::encodeHello(hello);
  auto parsed = dist::parseHello(body);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rank, 3u);

  auto bad_magic = body;
  bad_magic[1] ^= 0xFF;
  EXPECT_FALSE(dist::parseHello(bad_magic).has_value());

  auto trailing = body;
  trailing.push_back(0);
  EXPECT_FALSE(dist::parseHello(trailing).has_value());

  EXPECT_FALSE(dist::peekVerb({}).has_value());
  EXPECT_FALSE(dist::peekVerb({0x7F}).has_value());
}

TEST(DistCodec, SpecRoundTripCarriesShapeAndRecomputedHash) {
  dist::SpecAssignment spec;
  spec.workload = smallWorkload(5, 0.1);
  spec.rank = 1;
  spec.worker_count = 4;
  spec.shards = 2;
  spec.progress_ms = 25;
  const auto body = dist::encodeSpec(spec);
  auto parsed = dist::parseSpec(body);
  ASSERT_TRUE(parsed.has_value());
  EXPECT_EQ(parsed->rank, 1u);
  EXPECT_EQ(parsed->worker_count, 4u);
  EXPECT_EQ(parsed->shards, 2u);
  EXPECT_EQ(parsed->progress_ms, 25);
  EXPECT_EQ(parsed->spec_hash, dist::workloadHash(spec.workload));
  EXPECT_EQ(parsed->workload.master_seed, 5u);

  auto truncated = body;
  truncated.resize(truncated.size() / 2);
  EXPECT_FALSE(dist::parseSpec(truncated).has_value());
}

// ------------------------------------------------------- equivalence battery

TEST(DistEquivalence, OneWorkerTimesEightShardsMatchesSingleProcess) {
  const WorkloadSpec workload = smallWorkload(21);
  expectMatchesLocal(runDistributed(workload, 1, 8), runLocal(workload));
}

TEST(DistEquivalence, TwoWorkersTimesFourShardsMatchesSingleProcess) {
  const WorkloadSpec workload = smallWorkload(21);
  const dist::DistResult result = runDistributed(workload, 2, 4);
  expectMatchesLocal(result, runLocal(workload));
  ASSERT_EQ(result.workers.size(), 2u);
  for (const dist::WorkerReport& report : result.workers) {
    EXPECT_TRUE(report.rolled_up);
    EXPECT_TRUE(report.error.empty()) << report.error;
  }
}

TEST(DistEquivalence, FourWorkersTimesTwoShardsMatchesSingleProcess) {
  const WorkloadSpec workload = smallWorkload(21);
  expectMatchesLocal(runDistributed(workload, 4, 2), runLocal(workload));
}

TEST(DistEquivalence, HoldsUnderSeededFaults) {
  const WorkloadSpec workload = smallWorkload(77, 0.3);
  const LocalRun local = runLocal(workload);
  expectMatchesLocal(runDistributed(workload, 2, 4), local);
  expectMatchesLocal(runDistributed(workload, 4, 2), local);
}

TEST(DistEquivalence, ProgressStreamIsReadOnlyForTheRollup) {
  const WorkloadSpec workload = smallWorkload(21);
  std::atomic<std::uint64_t> progress_frames{0};
  dist::DriverConfig cfg;
  cfg.progress_ms = 1;
  cfg.on_progress = [&progress_frames](const dist::Progress& p) {
    EXPECT_LT(p.rank, 2u);
    ++progress_frames;
  };
  const dist::DistResult result = runDistributed(workload, 2, 4, cfg);
  // Streaming PROGRESS every millisecond must not perturb the rollup —
  // the sampler is read-only, exactly as in the single-process contract.
  expectMatchesLocal(result, runLocal(workload));
  EXPECT_GE(progress_frames.load(), 1u);
  ASSERT_EQ(result.workers.size(), 2u);
  EXPECT_EQ(progress_frames.load(), result.workers[0].progress_frames +
                                        result.workers[1].progress_frames);
}

TEST(DistEquivalence, SpawnedSubprocessWorkersMatchSingleProcess) {
  const std::string binary = dist::findWorkerBinary();
  if (binary.empty()) {
    GTEST_SKIP() << "cmc_load_worker binary not found next to the test";
  }
  const WorkloadSpec workload = smallWorkload(33, 0.2);
  dist::DriverConfig cfg;
  cfg.workers = 3;
  cfg.shards = 2;
  cfg.worker_binary = binary;
  dist::DistDriver driver(std::move(cfg));
  ASSERT_TRUE(driver.ok());
  expectMatchesLocal(driver.run(workload), runLocal(workload));
}

// --------------------------------------------- failure paths + protocol abuse

// A driver running in a background thread, so the test thread can speak
// raw (mis)framed protocol at its port.
struct DriverHarness {
  explicit DriverHarness(dist::DriverConfig cfg) : driver(std::move(cfg)) {
    EXPECT_TRUE(driver.ok());
  }
  void start(const WorkloadSpec& workload) {
    thread = std::thread([this, workload]() { result = driver.run(workload); });
  }
  dist::DistResult finish() {
    thread.join();
    return result;
  }
  dist::DistDriver driver;
  std::thread thread;
  dist::DistResult result;
};

std::unique_ptr<net::FramedConn> connectTo(const DriverHarness& harness) {
  auto conn = net::FramedConn::connect("127.0.0.1", harness.driver.port());
  EXPECT_NE(conn, nullptr);
  return conn;
}

std::thread realWorker(const DriverHarness& harness, std::uint32_t rank,
                       int expected_rc = 0) {
  return std::thread([port = harness.driver.port(), rank, expected_rc]() {
    dist::WorkerConfig wc;
    wc.port = port;
    wc.rank = rank;
    dist::DistWorker worker(wc);
    const int rc = worker.run();
    if (expected_rc >= 0) {
      EXPECT_EQ(rc, expected_rc) << "rank " << rank << ": " << worker.error();
    }
  });
}

TEST(DistFailure, WorkerThatNeverHellosFailsTheRunFast) {
  dist::DriverConfig cfg;
  cfg.workers = 1;
  cfg.hello_timeout_ms = 400;
  DriverHarness harness(std::move(cfg));
  auto mute = connectTo(harness);  // connects, then says nothing
  const auto started = Clock::now();
  harness.start(smallWorkload(3));
  const dist::DistResult result = harness.finish();
  const auto elapsed = Clock::now() - started;
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("HELLO"), std::string::npos) << result.error;
  ASSERT_EQ(result.workers.size(), 1u);
  EXPECT_FALSE(result.workers[0].connected);
  EXPECT_EQ(result.workers[0].error, "never sent HELLO");
  EXPECT_LT(elapsed, std::chrono::seconds(10)) << "failure was not fast";
}

TEST(DistFailure, VersionMismatchIsRejectedWithoutPoisoningTheRun) {
  dist::DriverConfig cfg;
  cfg.workers = 1;
  DriverHarness harness(std::move(cfg));
  harness.start(smallWorkload(3));

  auto old_client = connectTo(harness);
  ASSERT_NE(old_client, nullptr);
  old_client->sendFrame(
      dist::encodeHello(dist::Hello{dist::kMagic, dist::kVersion + 41, 0}));
  auto frame = old_client->readFrame();
  ASSERT_TRUE(frame.has_value());
  auto message = dist::parseErrorMsg(*frame);
  ASSERT_TRUE(message.has_value());
  EXPECT_NE(message->find("version"), std::string::npos) << *message;

  // The listener and the rank table survived: a correct worker completes.
  std::thread worker = realWorker(harness, 0);
  const dist::DistResult result = harness.finish();
  worker.join();
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(DistFailure, DuplicateHelloIsRejectedAndDyingClaimantIsAttributed) {
  dist::DriverConfig cfg;
  cfg.workers = 1;
  cfg.ack_timeout_ms = 2'000;
  DriverHarness harness(std::move(cfg));
  harness.start(smallWorkload(3));

  auto claimant = connectTo(harness);
  ASSERT_NE(claimant, nullptr);
  claimant->sendFrame(
      dist::encodeHello(dist::Hello{dist::kMagic, dist::kVersion, 0}));
  // Receiving SPEC proves rank 0 is claimed before the imposter speaks.
  auto spec_frame = claimant->readFrame();
  ASSERT_TRUE(spec_frame.has_value());
  EXPECT_EQ(dist::peekVerb(*spec_frame), dist::Verb::spec);

  auto imposter = connectTo(harness);
  ASSERT_NE(imposter, nullptr);
  imposter->sendFrame(
      dist::encodeHello(dist::Hello{dist::kMagic, dist::kVersion, 0}));
  auto rejection = imposter->readFrame();
  ASSERT_TRUE(rejection.has_value());
  auto message = dist::parseErrorMsg(*rejection);
  ASSERT_TRUE(message.has_value());
  EXPECT_NE(message->find("duplicate HELLO"), std::string::npos) << *message;

  // The claimant dies instead of acking; the run fails with rank attribution.
  claimant->close();
  const dist::DistResult result = harness.finish();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("rank 0"), std::string::npos) << result.error;
  ASSERT_EQ(result.workers.size(), 1u);
  EXPECT_FALSE(result.workers[0].error.empty());
}

TEST(DistFailure, WorkerReportedSpecHashMismatchAbortsTheFleet) {
  dist::DriverConfig cfg;
  cfg.workers = 1;
  DriverHarness harness(std::move(cfg));
  harness.start(smallWorkload(3));

  auto worker = connectTo(harness);
  ASSERT_NE(worker, nullptr);
  worker->sendFrame(
      dist::encodeHello(dist::Hello{dist::kMagic, dist::kVersion, 0}));
  auto spec_frame = worker->readFrame();
  ASSERT_TRUE(spec_frame.has_value());
  worker->sendFrame(dist::encodeErrorMsg("spec hash mismatch at rank 0"));
  const dist::DistResult result = harness.finish();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("spec hash mismatch"), std::string::npos)
      << result.error;
  EXPECT_NE(result.error.find("rank 0"), std::string::npos) << result.error;
}

TEST(DistFailure, AckWithWrongHashAbortsTheFleet) {
  dist::DriverConfig cfg;
  cfg.workers = 1;
  DriverHarness harness(std::move(cfg));
  harness.start(smallWorkload(3));

  auto worker = connectTo(harness);
  ASSERT_NE(worker, nullptr);
  worker->sendFrame(
      dist::encodeHello(dist::Hello{dist::kMagic, dist::kVersion, 0}));
  auto spec_frame = worker->readFrame();
  ASSERT_TRUE(spec_frame.has_value());
  auto spec = dist::parseSpec(*spec_frame);
  ASSERT_TRUE(spec.has_value());
  worker->sendFrame(
      dist::encodeSpecAck(dist::SpecAck{0, spec->spec_hash ^ 0xDEAD}));
  const dist::DistResult result = harness.finish();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("spec hash"), std::string::npos) << result.error;
  ASSERT_EQ(result.workers.size(), 1u);
  EXPECT_FALSE(result.workers[0].acked);
}

TEST(DistFailure, WorkerDyingAfterStartFailsWithAttribution) {
  dist::DriverConfig cfg;
  cfg.workers = 2;
  cfg.shards = 2;
  DriverHarness harness(std::move(cfg));
  harness.start(smallWorkload(3));
  // Rank 0 is a real worker (it may complete or be shut down mid-protocol
  // once the fleet aborts — either exit is legitimate, so don't assert it).
  std::thread survivor = realWorker(harness, 0, /*expected_rc=*/-1);

  auto doomed = connectTo(harness);
  ASSERT_NE(doomed, nullptr);
  doomed->sendFrame(
      dist::encodeHello(dist::Hello{dist::kMagic, dist::kVersion, 1}));
  auto spec_frame = doomed->readFrame();
  ASSERT_TRUE(spec_frame.has_value());
  auto spec = dist::parseSpec(*spec_frame);
  ASSERT_TRUE(spec.has_value());
  doomed->sendFrame(dist::encodeSpecAck(dist::SpecAck{1, spec->spec_hash}));
  auto start_frame = doomed->readFrame();
  ASSERT_TRUE(start_frame.has_value());
  EXPECT_EQ(dist::peekVerb(*start_frame), dist::Verb::start);
  doomed->close();  // crash after START, before any ROLLUP

  const dist::DistResult result = harness.finish();
  survivor.join();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("rank 1"), std::string::npos) << result.error;
  EXPECT_NE(result.error.find("died"), std::string::npos) << result.error;
  ASSERT_EQ(result.workers.size(), 2u);
  EXPECT_FALSE(result.workers[1].rolled_up);
}

TEST(DistFailure, CorruptFrameIsSkippedAsLossNotAProtocolError) {
  dist::DriverConfig cfg;
  cfg.workers = 1;
  DriverHarness harness(std::move(cfg));
  harness.start(smallWorkload(3));

  auto worker = connectTo(harness);
  ASSERT_NE(worker, nullptr);
  std::vector<std::uint8_t> torn = net::encodeRawFrame(
      dist::encodeHello(dist::Hello{dist::kMagic, dist::kVersion, 0}));
  torn.back() ^= 0xFF;  // fails its checksum: line noise, not malice
  worker->sendBytes(torn);
  worker->sendFrame(
      dist::encodeHello(dist::Hello{dist::kMagic, dist::kVersion, 0}));
  // The link skipped the corrupt frame and accepted the retry: SPEC arrives.
  auto spec_frame = worker->readFrame();
  ASSERT_TRUE(spec_frame.has_value());
  EXPECT_EQ(dist::peekVerb(*spec_frame), dist::Verb::spec);
  worker->sendFrame(dist::encodeErrorMsg("bailing out"));
  const dist::DistResult result = harness.finish();
  EXPECT_FALSE(result.ok);
  EXPECT_NE(result.error.find("bailing out"), std::string::npos)
      << result.error;
}

TEST(DistFailure, HostileLengthDropsTheConnectionButTheRunSurvives) {
  dist::DriverConfig cfg;
  cfg.workers = 1;
  DriverHarness harness(std::move(cfg));
  harness.start(smallWorkload(3));

  auto hostile = connectTo(harness);
  ASSERT_NE(hostile, nullptr);
  ByteWriter header;
  header.u32(net::RawFrameDecoder::kMaxFrame + 1);
  header.u32(0);
  hostile->sendBytes(header.bytes());
  // The driver hangs up on the poisoned stream...
  auto nothing = hostile->readFrame();
  EXPECT_FALSE(nothing.has_value());
  EXPECT_EQ(hostile->lastRead(), net::FramedConn::ReadStatus::closed);

  // ...while the listener keeps serving: a real worker completes the run.
  std::thread worker = realWorker(harness, 0);
  const dist::DistResult result = harness.finish();
  worker.join();
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(DistFailure, VerbBeforeHelloIsRejected) {
  dist::DriverConfig cfg;
  cfg.workers = 1;
  DriverHarness harness(std::move(cfg));
  harness.start(smallWorkload(3));

  auto confused = connectTo(harness);
  ASSERT_NE(confused, nullptr);
  confused->sendFrame(dist::encodeStart());  // reordered: START before HELLO
  auto rejection = confused->readFrame();
  ASSERT_TRUE(rejection.has_value());
  auto message = dist::parseErrorMsg(*rejection);
  ASSERT_TRUE(message.has_value());
  EXPECT_NE(message->find("expected HELLO"), std::string::npos) << *message;

  std::thread worker = realWorker(harness, 0);
  const dist::DistResult result = harness.finish();
  worker.join();
  EXPECT_TRUE(result.ok) << result.error;
}

TEST(DistFailure, RankOutOfRangeIsRejected) {
  dist::DriverConfig cfg;
  cfg.workers = 1;
  DriverHarness harness(std::move(cfg));
  harness.start(smallWorkload(3));

  auto outsider = connectTo(harness);
  ASSERT_NE(outsider, nullptr);
  outsider->sendFrame(
      dist::encodeHello(dist::Hello{dist::kMagic, dist::kVersion, 7}));
  auto rejection = outsider->readFrame();
  ASSERT_TRUE(rejection.has_value());
  auto message = dist::parseErrorMsg(*rejection);
  ASSERT_TRUE(message.has_value());
  EXPECT_NE(message->find("out of range"), std::string::npos) << *message;

  std::thread worker = realWorker(harness, 0);
  const dist::DistResult result = harness.finish();
  worker.join();
  EXPECT_TRUE(result.ok) << result.error;
}

}  // namespace
}  // namespace cmc::load
