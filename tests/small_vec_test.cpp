// SmallVec semantics: inline storage, heap spill, copy/move/self-assign.
// The hot path depends on codec lists staying inline (copying a descriptor
// must not allocate), so the inline/spill boundary is pinned here.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "util/small_vec.hpp"

namespace cmc {
namespace {

TEST(SmallVec, StartsEmptyAndInline) {
  SmallVec<int, 4> v;
  EXPECT_TRUE(v.empty());
  EXPECT_EQ(v.size(), 0u);
  EXPECT_EQ(v.capacity(), 4u);
  EXPECT_TRUE(v.isInline());
}

TEST(SmallVec, StaysInlineUpToCapacity) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 4; ++i) v.push_back(i);
  EXPECT_TRUE(v.isInline());
  EXPECT_EQ(v.size(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(v[i], i);
}

TEST(SmallVec, SpillsToHeapBeyondCapacity) {
  SmallVec<int, 4> v;
  for (int i = 0; i < 5; ++i) v.push_back(i);
  EXPECT_FALSE(v.isInline());
  EXPECT_GE(v.capacity(), 5u);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(v[i], i);
  // Clearing does not shrink back inline: capacity is sticky.
  v.clear();
  EXPECT_FALSE(v.isInline());
  EXPECT_TRUE(v.empty());
}

TEST(SmallVec, InitializerListAndEquality) {
  SmallVec<int, 4> a{1, 2, 3};
  SmallVec<int, 4> b{1, 2, 3};
  SmallVec<int, 4> c{1, 2, 4};
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == c);
  a = {7, 8};
  EXPECT_EQ(a.size(), 2u);
  EXPECT_EQ(a[0], 7);
}

TEST(SmallVec, CopyInlineAndHeap) {
  SmallVec<std::string, 2> small{"a", "b"};
  SmallVec<std::string, 2> copy1(small);
  EXPECT_EQ(copy1, small);
  EXPECT_TRUE(copy1.isInline());

  SmallVec<std::string, 2> big{"a", "b", "c", "d"};
  SmallVec<std::string, 2> copy2(big);
  EXPECT_EQ(copy2, big);
  EXPECT_FALSE(copy2.isInline());
  // Deep copy: mutating the copy leaves the original alone.
  copy2[0] = "z";
  EXPECT_EQ(big[0], "a");
}

TEST(SmallVec, MoveStealsHeapLeavesSourceEmpty) {
  SmallVec<int, 2> big{1, 2, 3, 4};
  const int* data = big.data();
  SmallVec<int, 2> moved(std::move(big));
  EXPECT_EQ(moved.data(), data);  // heap buffer stolen, not copied
  EXPECT_EQ(moved.size(), 4u);
  EXPECT_TRUE(big.empty());       // NOLINT(bugprone-use-after-move): spec'd
  EXPECT_TRUE(big.isInline());    // moved-from is valid, empty, inline
  big.push_back(9);
  EXPECT_EQ(big[0], 9);
}

TEST(SmallVec, MoveInlineMovesElements) {
  SmallVec<std::string, 4> v{"hello", "world"};
  SmallVec<std::string, 4> moved(std::move(v));
  EXPECT_EQ(moved.size(), 2u);
  EXPECT_EQ(moved[0], "hello");
  EXPECT_TRUE(moved.isInline());
  EXPECT_TRUE(v.empty());  // NOLINT(bugprone-use-after-move): spec'd
}

TEST(SmallVec, MoveAssignOverwritesExisting) {
  SmallVec<int, 2> dst{9, 9, 9};  // heap
  SmallVec<int, 2> src{1};
  dst = std::move(src);
  EXPECT_EQ(dst.size(), 1u);
  EXPECT_EQ(dst[0], 1);
}

TEST(SmallVec, SelfCopyAssignIsNoop) {
  SmallVec<int, 2> v{1, 2, 3};
  auto& alias = v;
  v = alias;
  EXPECT_EQ(v.size(), 3u);
  EXPECT_EQ(v[2], 3);
}

TEST(SmallVec, SelfMoveAssignLeavesValid) {
  SmallVec<int, 2> v{1, 2, 3};
  auto& alias = v;
  v = std::move(alias);
  // Standard-library convention: self-move leaves the object valid; we
  // additionally guarantee it is unchanged.
  EXPECT_EQ(v.size(), 3u);
}

TEST(SmallVec, AssignFromOwnRangeBuffersThroughTemporary) {
  SmallVec<int, 4> v{1, 2, 3};
  v.assign(v.begin(), v.end());
  EXPECT_EQ(v, (SmallVec<int, 4>{1, 2, 3}));
  // Partial self-range too (the dangerous aliasing case).
  v.assign(v.begin() + 1, v.end());
  EXPECT_EQ(v, (SmallVec<int, 4>{2, 3}));
}

TEST(SmallVec, AssignFromForeignIteratorsAndVector) {
  std::vector<int> src{4, 5, 6, 7, 8};
  SmallVec<int, 4> v{1};
  v.assign(src.begin(), src.end());
  EXPECT_EQ(v.size(), 5u);
  EXPECT_FALSE(v.isInline());
  EXPECT_EQ(v[4], 8);
}

TEST(SmallVec, ReserveGrowsCapacityKeepsElements) {
  SmallVec<int, 2> v{1, 2};
  v.reserve(100);
  EXPECT_GE(v.capacity(), 100u);
  EXPECT_FALSE(v.isInline());
  EXPECT_EQ(v[0], 1);
  EXPECT_EQ(v[1], 2);
}

TEST(SmallVec, PopBackAndFrontBack) {
  SmallVec<int, 4> v{1, 2, 3};
  EXPECT_EQ(v.front(), 1);
  EXPECT_EQ(v.back(), 3);
  v.pop_back();
  EXPECT_EQ(v.back(), 2);
  EXPECT_EQ(v.size(), 2u);
}

TEST(SmallVec, NonTrivialElementsDestroyed) {
  // shared_ptr use counts observe destruction across spill and clear.
  auto p = std::make_shared<int>(42);
  {
    SmallVec<std::shared_ptr<int>, 2> v;
    for (int i = 0; i < 5; ++i) v.push_back(p);  // spills at 3
    EXPECT_EQ(p.use_count(), 6);
  }
  EXPECT_EQ(p.use_count(), 1);
}

TEST(SmallVec, IterationMatchesIndexing) {
  SmallVec<int, 4> v{10, 20, 30};
  int sum = 0;
  for (int x : v) sum += x;
  EXPECT_EQ(sum, 60);
  const auto& cv = v;
  EXPECT_EQ(*cv.begin(), 10);
  EXPECT_EQ(cv.end() - cv.begin(), 3);
}

}  // namespace
}  // namespace cmc
