// Unit tests for src/channel: FIFO channel semantics, tunnels, meta-signals.
#include <gtest/gtest.h>

#include "channel/channel.hpp"

namespace cmc {
namespace {

Descriptor desc(std::uint64_t id) {
  const Codec codecs[] = {Codec::g711u};
  return makeDescriptor(DescriptorId{id}, MediaAddress::parse("10.0.0.1", 5000),
                        codecs, false);
}

TEST(MetaSignal, RoundTrip) {
  MetaSignal m{MetaKind::custom, "paid", "amount=5"};
  ByteWriter w;
  m.serialize(w);
  ByteReader r{w.bytes()};
  EXPECT_EQ(MetaSignal::deserialize(r), m);
  EXPECT_TRUE(r.ok());
}

TEST(MetaSignal, KindNames) {
  EXPECT_EQ(toString(MetaKind::available), "available");
  EXPECT_EQ(toString(MetaKind::teardown), "teardown");
}

TEST(ChannelMessage, TunnelSignalRoundTrip) {
  ChannelMessage m = TunnelSignal{3, OpenSignal{Medium::audio, desc(1)}};
  ByteWriter w;
  serialize(m, w);
  ByteReader r{w.bytes()};
  auto back = deserializeChannelMessage(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(ChannelMessage, MetaRoundTrip) {
  ChannelMessage m = MetaSignal{MetaKind::unavailable, "", ""};
  ByteWriter w;
  serialize(m, w);
  ByteReader r{w.bytes()};
  auto back = deserializeChannelMessage(r);
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
}

TEST(ChannelMessage, BadTagFails) {
  std::vector<std::uint8_t> bytes{9};
  ByteReader r{bytes};
  EXPECT_EQ(deserializeChannelMessage(r), std::nullopt);
}

TEST(Side, Opposite) {
  EXPECT_EQ(opposite(Side::A), Side::B);
  EXPECT_EQ(opposite(Side::B), Side::A);
}

class ChannelFixture : public ::testing::Test {
 protected:
  ChannelState ch_{ChannelId{1}, /*tunnel_count=*/2};
};

TEST_F(ChannelFixture, StartsEmpty) {
  EXPECT_TRUE(ch_.empty());
  EXPECT_FALSE(ch_.hasMessageToward(Side::A));
  EXPECT_FALSE(ch_.hasMessageToward(Side::B));
  EXPECT_EQ(ch_.tunnelCount(), 2u);
}

TEST_F(ChannelFixture, FifoPerDirection) {
  ch_.push(Side::B, TunnelSignal{0, CloseSignal{}});
  ch_.push(Side::B, TunnelSignal{1, CloseAckSignal{}});
  ASSERT_TRUE(ch_.hasMessageToward(Side::B));
  EXPECT_EQ(ch_.depthToward(Side::B), 2u);

  auto m1 = ch_.pop(Side::B);
  EXPECT_EQ(std::get<TunnelSignal>(m1).tunnel, 0u);
  auto m2 = ch_.pop(Side::B);
  EXPECT_EQ(std::get<TunnelSignal>(m2).tunnel, 1u);
  EXPECT_TRUE(ch_.empty());
}

TEST_F(ChannelFixture, DirectionsIndependent) {
  ch_.push(Side::A, TunnelSignal{0, CloseSignal{}});
  EXPECT_TRUE(ch_.hasMessageToward(Side::A));
  EXPECT_FALSE(ch_.hasMessageToward(Side::B));
  (void)ch_.pop(Side::A);
  EXPECT_TRUE(ch_.empty());
}

TEST_F(ChannelFixture, PeekDoesNotConsume) {
  ch_.push(Side::B, MetaSignal{MetaKind::available, "", ""});
  (void)ch_.peek(Side::B);
  EXPECT_EQ(ch_.depthToward(Side::B), 1u);
}

TEST_F(ChannelFixture, CanonicalizeDependsOnContents) {
  ByteWriter w1;
  ch_.canonicalize(w1);
  ch_.push(Side::A, TunnelSignal{0, CloseSignal{}});
  ByteWriter w2;
  ch_.canonicalize(w2);
  EXPECT_NE(fnv1a(w1.bytes()), fnv1a(w2.bytes()));
}

TEST_F(ChannelFixture, CanonicalizeOrderSensitive) {
  ChannelState a{ChannelId{1}, 1};
  ChannelState b{ChannelId{1}, 1};
  a.push(Side::A, TunnelSignal{0, CloseSignal{}});
  a.push(Side::A, TunnelSignal{0, CloseAckSignal{}});
  b.push(Side::A, TunnelSignal{0, CloseAckSignal{}});
  b.push(Side::A, TunnelSignal{0, CloseSignal{}});
  ByteWriter wa, wb;
  a.canonicalize(wa);
  b.canonicalize(wb);
  EXPECT_NE(fnv1a(wa.bytes()), fnv1a(wb.bytes()));
}

}  // namespace
}  // namespace cmc
