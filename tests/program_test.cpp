// Tests for the state-oriented programming API (ProgramBox): annotation
// application and continuity, guard evaluation on entry and on events, and
// the paper's Fig. 6 Click-to-Dial program written declaratively.
#include <gtest/gtest.h>

#include "core/program.hpp"
#include "endpoints/resources.hpp"
#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

namespace cmc {
namespace {

using namespace literals;
using P = ProgramBox;

// The Click-to-Dial program of Fig. 6, as a declarative state table.
class CtdProgram : public ProgramBox {
 public:
  CtdProgram(BoxId id, std::string name) : ProgramBox(id, std::move(name)) {
    addState("start", {});
    addState("oneCall", {P::openSlot("1a")});
    addState("twoCalls", {P::openSlot("1a"), P::openSlot("2a")});
    addState("busyTone", {P::flowLink("1a", "Ta")});
    addState("ringback", {P::flowLink("1a", "Ta"), P::openSlot("2a")});
    addState("connected", {P::flowLink("1a", "2a")});
    addState("done", {});

    addTransition("oneCall", "twoCalls", P::isFlowing("1a"),
                  [](ProgramBox& box) {
                    auto& self = static_cast<CtdProgram&>(box);
                    box.requestChannel(self.user2_, 1, "ch2");
                  });
    addTransition("oneCall", "done", P::onTimerTag("answer"),
                  [](ProgramBox& box) {
                    auto& self = static_cast<CtdProgram&>(box);
                    if (self.isBound("1a")) {
                      box.destroyChannel(box.channelOf(self.slotNamed("1a")));
                    }
                  });
    addTransition("twoCalls", "ringback", P::onMetaKind(MetaKind::available),
                  [](ProgramBox& box) { box.requestChannel("tone", 1, "chT"); });
    addTransition("twoCalls", "busyTone", P::onMetaKind(MetaKind::unavailable),
                  [](ProgramBox& box) {
                    auto& self = static_cast<CtdProgram&>(box);
                    box.destroyChannel(box.channelOf(self.slotNamed("2a")));
                    self.bind("2a", SlotId{});
                    box.requestChannel("tone", 1, "chT");
                  });
    addTransition("ringback", "busyTone", P::onMetaKind(MetaKind::unavailable),
                  [](ProgramBox& box) {
                    auto& self = static_cast<CtdProgram&>(box);
                    box.destroyChannel(box.channelOf(self.slotNamed("2a")));
                    self.bind("2a", SlotId{});
                    // the tone channel is already up from ringback
                  });
    addTransition("ringback", "connected", P::isFlowing("2a"),
                  [](ProgramBox& box) {
                    auto& self = static_cast<CtdProgram&>(box);
                    if (self.isBound("Ta")) {
                      box.destroyChannel(box.channelOf(self.slotNamed("Ta")));
                      self.bind("Ta", SlotId{});
                    }
                  });
    addTransition("twoCalls", "connected", P::isFlowing("2a"));
  }

  void click(const std::string& user1, const std::string& user2) {
    user2_ = user2;
    requestChannel(user1, 1, "ch1");
    setTimer(10_s, "answer");
    start("oneCall");
  }

 protected:
  void onChannelUp(ChannelId channel, const std::string& tag) override {
    const auto slots = slotsOf(channel);
    if (!slots.empty()) {
      if (tag == "ch1") bind("1a", slots.front());
      if (tag == "ch2") bind("2a", slots.front());
      if (tag == "chT") bind("Ta", slots.front());
    }
    // The current state's annotation now has a real slot to act on.
    refreshAnnotations();
    ProgramBox::onChannelUp(channel, tag);
  }

 private:
  std::string user2_;
};

class ProgramFixture : public ::testing::Test {
 protected:
  ProgramFixture()
      : sim_(TimingModel::paperDefaults(), 17),
        user1_(sim_.addBox<UserDeviceBox>("user1", sim_.mediaNetwork(),
                                          sim_.loop(),
                                          MediaAddress::parse("10.5.0.1", 5000))),
        user2_(sim_.addBox<UserDeviceBox>(
            "user2", sim_.mediaNetwork(), sim_.loop(),
            MediaAddress::parse("10.5.0.2", 5000),
            UserDeviceBox::AcceptPolicy::manual)),
        tone_(sim_.addBox<ToneGeneratorBox>("tone", sim_.mediaNetwork(),
                                            sim_.loop(),
                                            MediaAddress::parse("10.5.0.9", 5900))),
        ctd_(sim_.addBox<CtdProgram>("CTD")) {}

  Simulator sim_;
  UserDeviceBox& user1_;
  UserDeviceBox& user2_;
  ToneGeneratorBox& tone_;
  CtdProgram& ctd_;
};

TEST_F(ProgramFixture, DeclarativeCtdHappyPath) {
  sim_.inject("CTD", [](Box& b) {
    static_cast<CtdProgram&>(b).click("user1", "user2");
  });
  sim_.runFor(2_s);
  EXPECT_EQ(ctd_.currentState(), "ringback");
  EXPECT_TRUE(user1_.media().hears(tone_.toneId()));
  sim_.inject("user2",
              [](Box& b) { static_cast<UserDeviceBox&>(b).acceptCall(); });
  sim_.runFor(2_s);
  EXPECT_EQ(ctd_.currentState(), "connected");
  user1_.media().resetStats();
  sim_.runFor(1_s);
  EXPECT_TRUE(user1_.media().hears(user2_.media().id()));
  EXPECT_TRUE(user2_.media().hears(user1_.media().id()));
  EXPECT_FALSE(user1_.media().hears(tone_.toneId()));
}

TEST_F(ProgramFixture, DeclarativeCtdBusyPath) {
  sim_.inject("CTD", [](Box& b) {
    static_cast<CtdProgram&>(b).click("user1", "user2");
  });
  sim_.runFor(1_s);
  sim_.inject("user2",
              [](Box& b) { static_cast<UserDeviceBox&>(b).declineCall(); });
  sim_.runFor(2_s);
  EXPECT_EQ(ctd_.currentState(), "busyTone");
  EXPECT_TRUE(user1_.media().hears(tone_.toneId()));
}

TEST_F(ProgramFixture, TimeoutPathReachesDone) {
  auto& silent = sim_.addBox<UserDeviceBox>(
      "mute1", sim_.mediaNetwork(), sim_.loop(),
      MediaAddress::parse("10.5.0.3", 5000), UserDeviceBox::AcceptPolicy::manual);
  (void)silent;
  sim_.inject("CTD", [](Box& b) {
    static_cast<CtdProgram&>(b).click("mute1", "user2");
  });
  sim_.runFor(12_s);
  EXPECT_EQ(ctd_.currentState(), "done");
}

// ------------------------------------------------- ProgramBox primitives

TEST(ProgramBoxUnit, GuardsEvaluateOnEntry) {
  // A guard true at state entry fires immediately (the paper's "executable
  // as soon as the program enters the state").
  Simulator sim;
  auto& box = sim.addBox<ProgramBox>("p");
  box.addState("a", {});
  box.addState("b", {});
  bool reached_b = false;
  box.addTransition("a", "b", [](ProgramBox&) { return true; },
                    [&](ProgramBox&) { reached_b = true; });
  box.start("a");
  EXPECT_TRUE(reached_b);
  EXPECT_EQ(box.currentState(), "b");
}

TEST(ProgramBoxUnit, ChainedTransitionsStopAtFixpoint) {
  Simulator sim;
  auto& box = sim.addBox<ProgramBox>("p");
  box.addState("a", {}).addState("b", {}).addState("c", {});
  box.addTransition("a", "b", nullptr);  // nullptr guard = always
  box.addTransition("b", "c", nullptr);
  box.start("a");
  EXPECT_EQ(box.currentState(), "c");
}

TEST(ProgramBoxUnit, OnEnterActionsRun) {
  Simulator sim;
  auto& box = sim.addBox<ProgramBox>("p");
  box.addState("a", {});
  int entered = 0;
  box.onEnter("a", [&](ProgramBox&) { ++entered; });
  box.start("a");
  EXPECT_EQ(entered, 1);
}

TEST(ProgramBoxUnit, UnboundSlotPredicatesAreFalseButClosedIsTrue) {
  Simulator sim;
  auto& box = sim.addBox<ProgramBox>("p");
  box.addState("a", {});
  box.start("a");
  EXPECT_FALSE(box.flowing("x"));
  EXPECT_FALSE(box.opening("x"));
  EXPECT_TRUE(box.closed("x"));  // an unbound slot behaves as closed
}

}  // namespace
}  // namespace cmc
