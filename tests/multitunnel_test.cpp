// Multi-tunnel channels (paper Sections III-A and IX-B): each tunnel of a
// signaling channel controls one media channel and is COMPLETELY
// INDEPENDENT of every other tunnel — the design decision SIP's media
// bundling gets wrong. These tests drive audio+video tunnels on one
// channel and verify complete independence of setup, muting, and teardown.
#include <gtest/gtest.h>

#include "endpoints/av_device.hpp"
#include "sim/simulator.hpp"

namespace cmc {
namespace {

using namespace literals;

class MultiTunnel : public ::testing::Test {
 protected:
  MultiTunnel()
      : sim_(TimingModel::paperDefaults(), 29),
        a_(sim_.addBox<AvDeviceBox>(
            "A", sim_.mediaNetwork(), sim_.loop(),
            MediaAddress::parse("10.4.0.1", 5000),
            std::vector<AvDeviceBox::StreamSpec>{
                {Medium::audio, {Codec::g711u, Codec::g726}},
                {Medium::video, {Codec::h263, Codec::mpeg2}}})),
        b_(sim_.addBox<AvDeviceBox>(
            "B", sim_.mediaNetwork(), sim_.loop(),
            MediaAddress::parse("10.4.0.2", 5000),
            std::vector<AvDeviceBox::StreamSpec>{
                {Medium::audio, {Codec::g711u}},
                {Medium::video, {Codec::h263}}})) {
    channel_ = sim_.connect("A", "B", /*tunnels=*/2);
  }

  Simulator sim_;
  AvDeviceBox& a_;
  AvDeviceBox& b_;
  ChannelId channel_;
};

TEST_F(MultiTunnel, AudioAndVideoOpenConcurrently) {
  sim_.inject("A", [](Box& bx) {
    auto& device = static_cast<AvDeviceBox&>(bx);
    device.openStream(0);  // audio
    device.openStream(1);  // video, same channel, different tunnel
  });
  sim_.runFor(2_s);
  EXPECT_TRUE(b_.stream(0).hears(a_.stream(0).id()));
  EXPECT_TRUE(b_.stream(1).hears(a_.stream(1).id()));
  // Different media negotiated per tunnel, unilaterally.
  EXPECT_EQ(a_.slot(a_.slotsOf(channel_)[0]).medium(), Medium::audio);
  EXPECT_EQ(a_.slot(a_.slotsOf(channel_)[1]).medium(), Medium::video);
}

TEST_F(MultiTunnel, TunnelsAreIndependentForMuting) {
  sim_.inject("A", [](Box& bx) {
    auto& device = static_cast<AvDeviceBox&>(bx);
    device.openStream(0);
    device.openStream(1);
  });
  sim_.runFor(2_s);
  // Mute the audio tunnel only (describe on tunnel 0).
  sim_.inject("A", [this](Box& bx) {
    bx.setSlotMute(bx.slotsOf(channel_)[0], /*in=*/true, /*out=*/true);
  });
  sim_.runFor(1_s);
  b_.stream(0).resetStats();
  b_.stream(1).resetStats();
  sim_.runFor(1_s);
  EXPECT_EQ(b_.stream(0).packetsReceived(), 0u);  // audio muted
  EXPECT_GT(b_.stream(1).packetsReceived(), 20u);  // video untouched
}

TEST_F(MultiTunnel, ConcurrentModifyOnDifferentTunnelsNoContention) {
  // The paper's anti-bundling point: modifying audio and video at the same
  // time cannot contend, because the signals ride separate tunnels. Both
  // ends modify different tunnels in the same instant.
  sim_.inject("A", [](Box& bx) {
    auto& device = static_cast<AvDeviceBox&>(bx);
    device.openStream(0);
    device.openStream(1);
  });
  sim_.runFor(2_s);
  sim_.inject("A", [this](Box& bx) {
    bx.setSlotMute(bx.slotsOf(channel_)[0], false, true);  // A mutes audio out
  });
  sim_.inject("B", [this](Box& bx) {
    bx.setSlotMute(bx.slotsOf(channel_)[1], false, true);  // B mutes video out
  });
  sim_.runFor(1_s);
  b_.stream(0).resetStats();
  a_.stream(1).resetStats();
  a_.stream(0).resetStats();
  b_.stream(1).resetStats();
  sim_.runFor(1_s);
  EXPECT_EQ(b_.stream(0).packetsReceived(), 0u);  // audio A->B muted
  EXPECT_EQ(a_.stream(1).packetsReceived(), 0u);  // video B->A muted
  // The orthogonal directions still flow.
  EXPECT_GT(a_.stream(0).packetsReceived(), 20u);  // audio B->A
  EXPECT_GT(b_.stream(1).packetsReceived(), 20u);  // video A->B
}

TEST_F(MultiTunnel, ClosingOneTunnelLeavesOtherFlowing) {
  sim_.inject("A", [](Box& bx) {
    auto& device = static_cast<AvDeviceBox&>(bx);
    device.openStream(0);
    device.openStream(1);
  });
  sim_.runFor(2_s);
  sim_.inject("A", [this](Box& bx) {
    bx.setGoal(bx.slotsOf(channel_)[1], CloseSlotGoal{});  // drop video
  });
  sim_.runFor(1_s);
  EXPECT_EQ(a_.slot(a_.slotsOf(channel_)[1]).state(), ProtocolState::closed);
  EXPECT_EQ(a_.slot(a_.slotsOf(channel_)[0]).state(), ProtocolState::flowing);
  b_.stream(0).resetStats();
  b_.stream(1).resetStats();
  sim_.runFor(1_s);
  EXPECT_GT(b_.stream(0).packetsReceived(), 20u);
  EXPECT_EQ(b_.stream(1).packetsReceived(), 0u);
}

TEST_F(MultiTunnel, PerTunnelCodecChoiceIsUnilateral) {
  sim_.inject("A", [](Box& bx) {
    auto& device = static_cast<AvDeviceBox&>(bx);
    device.openStream(0);
    device.openStream(1);
  });
  sim_.runFor(2_s);
  // A offered {g711u,g726} / {h263,mpeg2}; B can do {g711u} / {h263}.
  // (A packet or two may clip at startup while the selects are in flight.)
  EXPECT_LE(b_.stream(0).packetsClipped(), 5u);
  const auto& audio_slot = a_.slot(a_.slotsOf(channel_)[0]);
  const auto& video_slot = a_.slot(a_.slotsOf(channel_)[1]);
  ASSERT_TRUE(audio_slot.lastSelectorReceived().has_value());
  ASSERT_TRUE(video_slot.lastSelectorReceived().has_value());
  EXPECT_EQ(audio_slot.lastSelectorReceived()->codec, Codec::g711u);
  EXPECT_EQ(video_slot.lastSelectorReceived()->codec, Codec::h263);
}

}  // namespace
}  // namespace cmc
