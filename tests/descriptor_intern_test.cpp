// DescriptorTable hash-consing properties.
//
// The refactor that interned descriptors is only sound if (a) equal
// descriptors always intern to the same handle, (b) the interned form
// serializes byte-identically to the plain form (the wire format must not
// know interning exists), and (c) concurrent interning from many threads
// yields exactly one entry. Each property is pinned here.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "codec/descriptor_intern.hpp"
#include "util/bytes.hpp"

namespace cmc {
namespace {

Descriptor sample(std::uint64_t id, std::uint16_t port,
                  std::initializer_list<Codec> codecs) {
  Descriptor d;
  d.id = DescriptorId{id};
  d.addr = MediaAddress::parse("10.1.2.3", port);
  d.codecs = codecs;
  return d;
}

TEST(DescriptorIntern, EqualDescriptorsInternToSameHandle) {
  auto& table = DescriptorTable::instance();
  const Descriptor d1 = sample(901, 4000, {Codec::g711u, Codec::g726});
  const Descriptor d2 = sample(901, 4000, {Codec::g711u, Codec::g726});
  ASSERT_EQ(d1, d2);
  InternedDescriptor h1 = table.intern(d1);
  InternedDescriptor h2 = table.intern(d2);
  EXPECT_EQ(h1, h2);  // pointer equality: hash-consing invariant
  EXPECT_EQ(&*h1, &*h2);
}

TEST(DescriptorIntern, DistinctDescriptorsGetDistinctHandles) {
  auto& table = DescriptorTable::instance();
  InternedDescriptor a = table.intern(sample(902, 4000, {Codec::g711u}));
  InternedDescriptor b = table.intern(sample(902, 4001, {Codec::g711u}));
  InternedDescriptor c = table.intern(sample(902, 4000, {Codec::g726}));
  EXPECT_NE(a, b);
  EXPECT_NE(a, c);
  EXPECT_NE(b, c);
}

TEST(DescriptorIntern, SerializeIsByteIdenticalToPlain) {
  const Descriptor plain =
      sample(903, 5004, {Codec::l16, Codec::g711u, Codec::g729});
  InternedDescriptor handle = DescriptorTable::instance().intern(plain);

  ByteWriter w_plain;
  plain.serialize(w_plain);
  ByteWriter w_interned;
  handle->serialize(w_interned);
  ASSERT_EQ(w_plain.bytes().size(), w_interned.bytes().size());
  EXPECT_TRUE(std::equal(w_plain.bytes().begin(), w_plain.bytes().end(),
                         w_interned.bytes().begin()));
}

TEST(DescriptorIntern, DeserializedDescriptorInternsToSameHandle) {
  const Descriptor original = sample(904, 6000, {Codec::g722, Codec::gsmFr});
  InternedDescriptor h1 = DescriptorTable::instance().intern(original);

  ByteWriter w;
  original.serialize(w);
  ByteReader r{w.bytes()};
  const Descriptor round = Descriptor::deserialize(r);
  ASSERT_TRUE(r.ok());
  InternedDescriptor h2 = DescriptorTable::instance().intern(round);
  EXPECT_EQ(h1, h2);
}

TEST(DescriptorIntern, HandleMimicsOptionalInterface) {
  InternedDescriptor h;
  EXPECT_FALSE(h.has_value());
  EXPECT_FALSE(static_cast<bool>(h));

  h = sample(905, 7000, {Codec::g711a});  // interning assignment
  ASSERT_TRUE(h.has_value());
  EXPECT_EQ(h->id, DescriptorId{905});
  EXPECT_EQ((*h).addr.port, 7000);

  h.reset();
  EXPECT_FALSE(h.has_value());
}

TEST(DescriptorIntern, CachedHashMatchesStructuralHash) {
  const Descriptor d = sample(906, 8000, {Codec::g726, Codec::g729});
  InternedDescriptor h = DescriptorTable::instance().intern(d);
  EXPECT_EQ(h.hash(), DescriptorTable::hashOf(d));
  // Equal content hashes equal regardless of container state.
  Descriptor d2 = d;
  d2.codecs.reserve(64);  // spill to heap; content unchanged
  EXPECT_EQ(DescriptorTable::hashOf(d2), DescriptorTable::hashOf(d));
}

TEST(DescriptorIntern, InterningIsIdempotentOnTableSize) {
  auto& table = DescriptorTable::instance();
  const Descriptor d = sample(907, 9000, {Codec::t140});
  (void)table.intern(d);
  const std::size_t after_first = table.size();
  for (int i = 0; i < 100; ++i) (void)table.intern(d);
  EXPECT_EQ(table.size(), after_first);
}

TEST(DescriptorIntern, ConcurrentInternFromEightThreadsYieldsOneEntry) {
  auto& table = DescriptorTable::instance();
  const Descriptor d =
      sample(908, 10000, {Codec::l16, Codec::g711u, Codec::g711a, Codec::g722});
  const std::size_t before = table.size();

  constexpr int kThreads = 8;
  std::vector<InternedDescriptor> handles(kThreads);
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&table, &d, &handles, t]() {
      // Hammer the same descriptor: every iteration must return the one
      // canonical handle, racing inserts included.
      InternedDescriptor h;
      for (int i = 0; i < 1000; ++i) h = table.intern(d);
      handles[t] = h;
    });
  }
  for (auto& th : threads) th.join();

  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[t], handles[0]);
  EXPECT_EQ(table.size(), before + 1);
}

TEST(DescriptorIntern, CodecListBeyondInlineCapacityStillInternsCorrectly) {
  // 5+ codecs spill the SmallVec to the heap; interning and equality must
  // be content-based, not storage-based.
  const Descriptor d = sample(909, 11000,
                              {Codec::l16, Codec::g711u, Codec::g711a,
                               Codec::g722, Codec::g726, Codec::g729});
  InternedDescriptor h1 = DescriptorTable::instance().intern(d);
  Descriptor copy = d;
  InternedDescriptor h2 = DescriptorTable::instance().intern(copy);
  EXPECT_EQ(h1, h2);
  EXPECT_EQ(h1->codecs.size(), 6u);
}

}  // namespace
}  // namespace cmc
