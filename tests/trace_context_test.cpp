// Tests for in-band trace-context propagation: causal linkage of stimulus
// spans across boxes, root allocation at injections, duplicate deliveries
// keeping one trace id with distinct span ids, deterministic id streams,
// and the feature being invisible while disabled.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <vector>

#include "endpoints/user_device.hpp"
#include "obs/context.hpp"
#include "obs/trace.hpp"
#include "sim/fault.hpp"
#include "sim/simulator.hpp"

namespace cmc {
namespace {

using namespace literals;

// Run the canonical two-phone call with `rec` attached; propagation state is
// whatever the caller set on the recorder beforehand.
void runCall(std::uint64_t seed, obs::TraceRecorder& rec,
             FaultPlan* plan = nullptr) {
  Simulator sim(TimingModel::paperDefaults(), seed);
  sim.attachTrace(&rec);
  sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.0.0.1", 5000));
  sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.0.0.2", 5000));
  if (plan != nullptr) sim.installFaultPlan(plan);
  sim.inject("A",
             [](Box& box) { static_cast<UserDeviceBox&>(box).placeCall("B"); });
  sim.runFor(2_s);
}

TEST(TraceContextTest, OffByDefaultLeavesEventsUnstamped) {
  obs::TraceRecorder rec;
  EXPECT_FALSE(rec.propagationEnabled());
  runCall(/*seed=*/5, rec);
  for (const obs::TraceEvent& ev : rec.snapshot()) {
    EXPECT_EQ(ev.trace_id, 0u);
    EXPECT_EQ(ev.span_id, 0u);
    EXPECT_EQ(ev.parent_span, 0u);
  }
  // The export shape is bit-compatible with the pre-context format.
  EXPECT_EQ(rec.chromeTraceJson().find("\"trace\":"), std::string::npos);
}

TEST(TraceContextTest, EverySpanStampedAndLinkedUnderPropagation) {
  obs::TraceRecorder rec;
  rec.setPropagation(true);
  runCall(/*seed=*/5, rec);

  std::map<std::uint64_t, const obs::TraceEvent*> span_of;
  std::vector<const obs::TraceEvent*> spans;
  for (const obs::TraceEvent& ev : rec.snapshot()) {
    if (ev.kind != obs::EventKind::boxSpan) continue;
    EXPECT_NE(ev.trace_id, 0u);
    EXPECT_NE(ev.span_id, 0u);
    span_of.emplace(ev.span_id, &ev);
    spans.push_back(&ev);
  }
  ASSERT_GT(spans.size(), 2u);

  bool saw_cross_actor_link = false;
  for (const obs::TraceEvent* span : spans) {
    if (span->parent_span == 0) continue;  // a root (the user injection)
    auto pit = span_of.find(span->parent_span);
    ASSERT_NE(pit, span_of.end()) << "non-root span has unresolvable parent";
    // A child belongs to its parent's trace and strictly follows it.
    EXPECT_EQ(span->trace_id, pit->second->trace_id);
    EXPECT_GE(span->ts_us, pit->second->ts_us + pit->second->dur_us);
    if (span->actor != pit->second->actor) saw_cross_actor_link = true;
  }
  EXPECT_TRUE(saw_cross_actor_link) << "no parent->child hop crossed a box";
}

TEST(TraceContextTest, WholeCallSetupSharesOneTrace) {
  obs::TraceRecorder rec;
  rec.setPropagation(true);
  runCall(/*seed=*/7, rec);
  // The only root stimulus is the placeCall injection, so every span of the
  // setup cascade carries that root's trace id.
  std::set<std::uint64_t> traces;
  for (const obs::TraceEvent& ev : rec.snapshot()) {
    if (ev.kind == obs::EventKind::boxSpan) traces.insert(ev.trace_id);
  }
  EXPECT_EQ(traces.size(), 1u);
}

TEST(TraceContextTest, NonSpanEventsAdoptTheEnclosingStimulus) {
  obs::TraceRecorder rec;
  rec.setPropagation(true);
  runCall(/*seed=*/3, rec);
  std::set<std::uint64_t> span_ids;
  for (const obs::TraceEvent& ev : rec.snapshot()) {
    if (ev.kind == obs::EventKind::boxSpan) span_ids.insert(ev.span_id);
  }
  std::size_t adopted = 0;
  for (const obs::TraceEvent& ev : rec.snapshot()) {
    if (ev.kind != obs::EventKind::slotTransition &&
        ev.kind != obs::EventKind::signalSend)
      continue;
    // Slot transitions and sends happen inside a stimulus; adoption must
    // have attributed them to one of the recorded spans.
    EXPECT_NE(ev.trace_id, 0u);
    if (span_ids.count(ev.span_id) != 0) ++adopted;
  }
  EXPECT_GT(adopted, 0u);
  // Arrivals are recorded before the receiving span exists: they carry the
  // causing (sender) span so the analyzer can attribute transit time.
  for (const obs::TraceEvent& ev : rec.snapshot()) {
    if (ev.kind != obs::EventKind::signalRecv) continue;
    EXPECT_NE(ev.trace_id, 0u);
    EXPECT_NE(ev.parent_span, 0u);
    EXPECT_EQ(span_ids.count(ev.parent_span), 1u);
  }
}

TEST(TraceContextTest, DuplicateDeliveriesShareTraceWithDistinctSpans) {
  FaultSpec spec;
  spec.duplicate_rate = 1.0;  // every signal delivered twice
  FaultPlan plan(/*seed=*/23, spec);
  obs::TraceRecorder rec;
  rec.setPropagation(true);
  runCall(/*seed=*/5, rec, &plan);
  ASSERT_GT(plan.counters().duplicated, 0u);

  // Each duplicated delivery restimulates the receiver with the same cause:
  // sibling spans share (trace, parent) but never a span id.
  std::map<std::pair<std::uint64_t, std::uint64_t>, std::set<std::uint64_t>>
      siblings;
  std::set<std::uint64_t> all_spans;
  for (const obs::TraceEvent& ev : rec.snapshot()) {
    if (ev.kind != obs::EventKind::boxSpan) continue;
    EXPECT_TRUE(all_spans.insert(ev.span_id).second)
        << "span id reused across stimuli";
    if (ev.parent_span != 0) {
      siblings[{ev.trace_id, ev.parent_span}].insert(ev.span_id);
    }
  }
  bool saw_duplicate_pair = false;
  for (const auto& [cause, ids] : siblings) {
    if (ids.size() >= 2) saw_duplicate_pair = true;
  }
  EXPECT_TRUE(saw_duplicate_pair)
      << "expected at least one cause with two sibling deliveries";
}

TEST(TraceContextTest, SameSeedRunsExportByteIdenticalCausalTraces) {
  obs::TraceRecorder first;
  obs::TraceRecorder second;
  first.setPropagation(true);
  second.setPropagation(true);
  runCall(/*seed=*/11, first);
  runCall(/*seed=*/11, second);
  ASSERT_GT(first.recorded(), 0u);
  const std::string json = first.chromeTraceJson();
  EXPECT_EQ(json, second.chromeTraceJson());
  // Propagation adds causal args and flow arrows to the export.
  EXPECT_NE(json.find("\"trace\":"), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"s\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"f\""), std::string::npos);
}

TEST(TraceContextTest, ContextScopeRestoresOnExit) {
  const obs::TraceContext outer{1, 2};
  const obs::TraceContext inner{3, 4};
  EXPECT_TRUE(obs::currentContext().empty());
  {
    obs::ContextScope a(outer);
    EXPECT_EQ(obs::currentContext(), outer);
    {
      obs::ContextScope b(inner);
      EXPECT_EQ(obs::currentContext(), inner);
    }
    EXPECT_EQ(obs::currentContext(), outer);
  }
  EXPECT_TRUE(obs::currentContext().empty());
}

}  // namespace
}  // namespace cmc
