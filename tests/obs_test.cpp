// Tests for the observability subsystem: trace recorder determinism and
// ring-buffer bounds, recorder transparency (on vs off changes nothing),
// metrics counters, convergence probes, and log timestamps.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "endpoints/user_device.hpp"
#include "obs/flight_recorder.hpp"
#include "obs/metrics.hpp"
#include "obs/probes.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace cmc {
namespace {

using namespace literals;

struct CallOutcome {
  std::uint64_t signals = 0;
  bool a_hears_b = false;
  bool b_hears_a = false;
  double end_ms = 0;
};

// Run the canonical two-phone call for 2 s of virtual time, optionally with
// a recorder and registry installed, and report what happened.
CallOutcome runCall(std::uint64_t seed, obs::TraceRecorder* rec,
                    obs::MetricsRegistry* reg) {
  Simulator sim(TimingModel::paperDefaults(), seed);
  if (rec != nullptr) sim.attachTrace(rec);
  if (reg != nullptr) sim.attachMetrics(reg);
  auto& a = sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.1", 5000));
  auto& b = sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.2", 5000));
  sim.inject("A", [](Box& box) { static_cast<UserDeviceBox&>(box).placeCall("B"); });
  sim.runFor(2_s);
  CallOutcome out;
  out.signals = sim.signalsDelivered();
  out.a_hears_b = a.media().hears(b.media().id());
  out.b_hears_a = b.media().hears(a.media().id());
  out.end_ms = sim.now().millis();
  return out;
}

TEST(ObsTraceTest, IdenticalSeedsYieldByteIdenticalTraces) {
  obs::TraceRecorder first;
  obs::TraceRecorder second;
  runCall(/*seed=*/5, &first, nullptr);
  runCall(/*seed=*/5, &second, nullptr);
  ASSERT_GT(first.recorded(), 0u);
  EXPECT_EQ(first.recorded(), second.recorded());
  EXPECT_EQ(first.chromeTraceJson(), second.chromeTraceJson());
}

TEST(ObsTraceTest, RecorderOnVsOffIdenticalOutcomes) {
  obs::TraceRecorder rec;
  obs::MetricsRegistry reg;
  const CallOutcome off = runCall(/*seed=*/9, nullptr, nullptr);
  const CallOutcome on = runCall(/*seed=*/9, &rec, &reg);
  EXPECT_EQ(on.signals, off.signals);
  EXPECT_EQ(on.a_hears_b, off.a_hears_b);
  EXPECT_EQ(on.b_hears_a, off.b_hears_a);
  EXPECT_EQ(on.end_ms, off.end_ms);
  EXPECT_TRUE(off.a_hears_b);
  EXPECT_TRUE(off.b_hears_a);
}

TEST(ObsTraceTest, RingOverflowKeepsNewestWithDroppedCount) {
  obs::TraceRecorder rec(/*capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    rec.record(obs::EventKind::mark, "e" + std::to_string(i), "t");
  }
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  const std::vector<obs::TraceEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].name,
              "e" + std::to_string(12 + i));
  }
  EXPECT_NE(rec.chromeTraceJson().find("\"dropped_events\":12"),
            std::string::npos);
}

TEST(ObsTraceTest, RingOverflowBumpsDroppedMetricAndReportsSize) {
  obs::MetricsRegistry reg;
  obs::setThreadMetrics(&reg);
  obs::TraceRecorder rec(/*capacity=*/4);
  for (int i = 0; i < 3; ++i) {
    rec.record(obs::EventKind::mark, "fits", "t");
  }
  EXPECT_EQ(rec.size(), 3u);
  // No overflow yet: the counter must not even exist, so drop-free runs
  // keep their metrics dumps byte-identical.
  EXPECT_EQ(reg.findCounter("trace.dropped"), nullptr);
  for (int i = 0; i < 7; ++i) {
    rec.record(obs::EventKind::mark, "overflow", "t");
  }
  EXPECT_EQ(rec.size(), rec.capacity());
  EXPECT_EQ(rec.dropped(), 6u);
  const obs::Counter* dropped = reg.findCounter("trace.dropped");
  ASSERT_NE(dropped, nullptr);
  EXPECT_EQ(dropped->value(), 6u);
  obs::setThreadMetrics(nullptr);
}

TEST(ObsMetricsTest, GaugeMaxNeverSetReturnsValueNotSentinel) {
  // Regression: a created-but-never-set gauge used to report INT64_MIN as
  // its high-water mark, which leaked the sentinel into dumps.
  obs::Gauge gauge;
  EXPECT_EQ(gauge.max(), 0);
  EXPECT_EQ(gauge.value(), 0);
  obs::MetricsRegistry reg;
  (void)reg.gauge("untouched");
  EXPECT_NE(reg.json().find("\"untouched\":{\"value\":0,\"max\":0}"),
            std::string::npos);
  // Once set, max tracks the high-water mark as before.
  gauge.set(-5);
  EXPECT_EQ(gauge.max(), -5);
  gauge.set(3);
  gauge.set(1);
  EXPECT_EQ(gauge.max(), 3);
}

TEST(ObsTraceTest, SlotTransitionsAndSignalsRecorded) {
  obs::TraceRecorder rec;
  runCall(/*seed=*/3, &rec, nullptr);
  bool saw_flowing = false;
  bool saw_send_open = false;
  bool saw_recv_oack = false;
  bool saw_span = false;
  for (const obs::TraceEvent& ev : rec.snapshot()) {
    if (ev.kind == obs::EventKind::slotTransition && ev.name == "flowing") {
      saw_flowing = true;
      EXPECT_FALSE(ev.actor.empty());  // ActorScope attributed the box
    }
    if (ev.kind == obs::EventKind::signalSend && ev.name == "open") {
      saw_send_open = true;
    }
    if (ev.kind == obs::EventKind::signalRecv && ev.name == "oack") {
      saw_recv_oack = true;
    }
    if (ev.kind == obs::EventKind::boxSpan) {
      saw_span = true;
      EXPECT_EQ(ev.dur_us, 20'000);  // paper processing cost c = 20 ms
    }
  }
  EXPECT_TRUE(saw_flowing);
  EXPECT_TRUE(saw_send_open);
  EXPECT_TRUE(saw_recv_oack);
  EXPECT_TRUE(saw_span);
}

TEST(ObsMetricsTest, CountersPopulatedBySimulation) {
  obs::MetricsRegistry reg;
  runCall(/*seed=*/7, nullptr, &reg);
  const obs::Counter* stimuli = reg.findCounter("sim.stimuli");
  ASSERT_NE(stimuli, nullptr);
  EXPECT_GT(stimuli->value(), 0u);
  const obs::Counter* open = reg.findCounter("sim.signal.open");
  ASSERT_NE(open, nullptr);
  EXPECT_GE(open->value(), 1u);
  const obs::Counter* posted = reg.findCounter("goal.posted");
  ASSERT_NE(posted, nullptr);
  EXPECT_GE(posted->value(), 2u);  // both devices post goals
  const obs::Counter* achieved = reg.findCounter("goal.achieved");
  ASSERT_NE(achieved, nullptr);
  EXPECT_GE(achieved->value(), 1u);
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.stimuli\""), std::string::npos);
}

TEST(ObsMetricsTest, GaugeAddIsExactUnderContention) {
  // Regression: add() used to be a load/set pair, losing concurrent deltas.
  obs::Gauge gauge;
  constexpr int kThreads = 8;
  constexpr int kIters = 20'000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&gauge]() {
      for (int i = 0; i < kIters; ++i) {
        gauge.add(2);
        gauge.add(-1);
      }
    });
  }
  for (std::thread& th : threads) th.join();
  EXPECT_EQ(gauge.value(), kThreads * kIters);
  // The high-water mark saw at least the final value and never more than
  // the sum of all positive deltas.
  EXPECT_GE(gauge.max(), gauge.value());
  EXPECT_LE(gauge.max(), std::int64_t{2} * kThreads * kIters);
}

TEST(ObsTraceTest, FlowEventsLinkParentAndChildSpans) {
  obs::TraceRecorder rec;
  obs::TraceEvent parent;
  parent.kind = obs::EventKind::boxSpan;
  parent.name = "stimulus";
  parent.actor = "A";
  parent.ts_us = 100;
  parent.dur_us = 20'000;
  parent.trace_id = 7;
  parent.span_id = 1;
  rec.record(parent);
  obs::TraceEvent child = parent;
  child.actor = "B";
  child.ts_us = 54'100;
  child.span_id = 2;
  child.parent_span = 1;
  rec.record(child);
  // An orphan whose parent fell out of the ring must not emit an arrow.
  obs::TraceEvent orphan = parent;
  orphan.actor = "C";
  orphan.ts_us = 90'000;
  orphan.span_id = 3;
  orphan.parent_span = 99;
  rec.record(orphan);

  const std::string json = rec.chromeTraceJson();
  // The arrow leaves A's span at its end and lands at B's span start, both
  // sides carrying the child's span id so viewers pair them up.
  EXPECT_NE(json.find("{\"ph\":\"s\",\"pid\":1,\"tid\":1,\"ts\":20100,"
                      "\"cat\":\"flow\",\"name\":\"causal\",\"id\":2}"),
            std::string::npos);
  EXPECT_NE(json.find("{\"ph\":\"f\",\"bp\":\"e\",\"pid\":1,\"tid\":2,"
                      "\"ts\":54100,\"cat\":\"flow\",\"name\":\"causal\","
                      "\"id\":2}"),
            std::string::npos);
  EXPECT_EQ(json.find("\"id\":3}"), std::string::npos);
}

TEST(ObsMetricsTest, HistogramQuantiles) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("test.latency");
  for (int i = 1; i <= 100; ++i) h.observe(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.mean(), 50.5, 0.01);
  EXPECT_GE(h.quantile(0.99), h.quantile(0.5));
  EXPECT_LE(h.quantile(1.0), 100.0);
}

TEST(ObsProbesTest, ProbeCapturesConvergenceLatency) {
  Simulator sim(TimingModel::paperDefaults(), 11);
  auto& a = sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.1", 5000));
  auto& b = sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.2", 5000));
  // Probes are re-evaluated after box stimuli, so the predicate must read
  // signaling-driven state (sendingState is set synchronously inside the
  // device's stimulus processing), not packet-arrival state like hears().
  sim.probes().arm("call_setup", "setup", sim.nowUs(), [&]() {
    const auto& sa = a.media().sendingState();
    const auto& sb = b.media().sendingState();
    return sa && sb && sa->target == b.media().address() &&
           sb->target == a.media().address() && !isNoMedia(sa->codec) &&
           !isNoMedia(sb->codec);
  });
  EXPECT_EQ(sim.probes().armedCount(), 1u);
  sim.inject("A", [](Box& box) { static_cast<UserDeviceBox&>(box).placeCall("B"); });
  sim.runFor(5_s);
  EXPECT_EQ(sim.probes().convergedCount(), 1u);
  const auto latency = sim.probes().latencyUs("call_setup");
  ASSERT_TRUE(latency.has_value());
  EXPECT_GT(*latency, 0);
  EXPECT_LT(*latency, 2'000'000);  // converged well before the horizon
  const obs::Histogram* h = sim.probes().histogram("setup");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_NE(sim.probes().json().find("\"setup\""), std::string::npos);
}

TEST(ObsProbesTest, UnsatisfiedProbeStaysArmed) {
  Simulator sim(TimingModel::paperDefaults(), 13);
  sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.0.0.1", 5000));
  sim.probes().arm("never", "never", sim.nowUs(), []() { return false; });
  sim.inject("A", [](Box&) {});
  sim.runFor(1_s);
  EXPECT_EQ(sim.probes().armedCount(), 1u);
  EXPECT_EQ(sim.probes().convergedCount(), 0u);
  EXPECT_FALSE(sim.probes().latencyUs("never").has_value());
}

TEST(ObsFlightRecorderTest, ProbeDeadlineTriggersPostMortemDump) {
  Simulator sim(TimingModel::paperDefaults(), 17);
  obs::TraceRecorder rec;
  obs::MetricsRegistry reg;
  sim.attachTrace(&rec);
  sim.attachMetrics(&reg);
  rec.setPropagation(true);
  obs::FlightRecorder::Config cfg;
  cfg.directory = ::testing::TempDir();
  cfg.prefix = "obs_test_flight";
  obs::FlightRecorder flight(cfg);
  sim.attachFlightRecorder(&flight);

  sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.0.0.1", 5000));
  sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.0.0.2", 5000));
  std::string failed_probe;
  sim.probes().setOnFailure(
      [&](const std::string& name, std::int64_t) { failed_probe = name; });
  // A watchdog that can never converge: the first probe check after its
  // deadline (1 ms of virtual time) must fail it and dump a post-mortem.
  sim.probes().arm("never", "never", sim.nowUs(), []() { return false; },
                   /*deadline_us=*/1'000);
  sim.inject("A",
             [](Box& box) { static_cast<UserDeviceBox&>(box).placeCall("B"); });
  sim.runFor(2_s);

  EXPECT_EQ(sim.probes().failedCount(), 1u);
  ASSERT_EQ(sim.probes().failed().size(), 1u);
  EXPECT_EQ(sim.probes().failed()[0], "never");
  EXPECT_EQ(failed_probe, "never");
  EXPECT_EQ(sim.probes().armedCount(), 0u);
  EXPECT_EQ(flight.dumps(), 1u);

  std::ifstream in(flight.lastPath());
  ASSERT_TRUE(in.good()) << flight.lastPath();
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(body.find("\"reason\":\"probe_timeout:never\""), std::string::npos);
  EXPECT_NE(body.find("\"critical_path\":"), std::string::npos);
  EXPECT_NE(body.find("\"trace\":"), std::string::npos);
  EXPECT_NE(body.find("\"metrics\":"), std::string::npos);
  EXPECT_NE(body.find("\"probes_failed\":1"), std::string::npos);
}

TEST(ObsFlightRecorderTest, FlightAssertDumpsOnlyOnFailure) {
  obs::TraceRecorder rec;
  rec.record(obs::EventKind::mark, "before_failure", "harness");
  obs::FlightRecorder::Config cfg;
  cfg.directory = ::testing::TempDir();
  cfg.prefix = "obs_test_assert";
  cfg.max_dumps = 2;
  obs::FlightRecorder flight(cfg);
  flight.setTrace(&rec);
  obs::setFlightRecorder(&flight);

  EXPECT_TRUE(obs::flightAssert(true, "fine"));
  EXPECT_EQ(flight.dumps(), 0u);
  EXPECT_FALSE(obs::flightAssert(false, "path diverged"));
  EXPECT_EQ(flight.dumps(), 1u);
  // The reason is slugified into the deterministic filename.
  EXPECT_NE(flight.lastPath().find("obs_test_assert_0_assert_path_diverged"),
            std::string::npos);
  std::ifstream in(flight.lastPath());
  ASSERT_TRUE(in.good());
  std::string body((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(body.find("before_failure"), std::string::npos);

  // max_dumps caps a crash-looping run.
  EXPECT_FALSE(obs::flightAssert(false, "again"));
  EXPECT_FALSE(obs::flightAssert(false, "and again"));
  EXPECT_EQ(flight.dumps(), 2u);
  obs::setFlightRecorder(nullptr);
}

TEST(ObsLogTest, TimestampsUseInjectedSimTime) {
  std::ostringstream sink;
  log::setSink(&sink);
  log::setLevel(log::Level::info);
  log::setSimTimeSource([]() { return std::int64_t{1'234'567}; });
  log::info("obs_test", "hello");
  log::setSimTimeSource(nullptr);
  log::setLevel(log::Level::none);
  log::setSink(nullptr);
  const std::string line = sink.str();
  EXPECT_EQ(line.rfind("[+1234.567ms]", 0), 0u) << line;
  EXPECT_NE(line.find("[INFO ]"), std::string::npos);
}

TEST(ObsLogTest, WallClockTimestampByDefault) {
  std::ostringstream sink;
  log::setSink(&sink);
  log::setLevel(log::Level::info);
  log::info("obs_test", "hello");
  log::setLevel(log::Level::none);
  log::setSink(nullptr);
  const std::string line = sink.str();
  // "[HH:MM:SS.mmm] " prefix: fixed punctuation at fixed offsets.
  ASSERT_GE(line.size(), 15u);
  EXPECT_EQ(line[0], '[');
  EXPECT_EQ(line[3], ':');
  EXPECT_EQ(line[6], ':');
  EXPECT_EQ(line[9], '.');
  EXPECT_EQ(line[13], ']');
}

TEST(ObsEventLoopTest, ExecutedCounterTracksSteps) {
  EventLoop loop;
  int fired = 0;
  for (int i = 0; i < 5; ++i) loop.schedule(1_ms, [&] { ++fired; });
  EXPECT_EQ(loop.executed(), 0u);
  loop.runUntilIdle();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(loop.executed(), 5u);
  EXPECT_GE(loop.peakPending(), 5u);
}

}  // namespace
}  // namespace cmc
