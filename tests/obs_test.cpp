// Tests for the observability subsystem: trace recorder determinism and
// ring-buffer bounds, recorder transparency (on vs off changes nothing),
// metrics counters, convergence probes, and log timestamps.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "endpoints/user_device.hpp"
#include "obs/metrics.hpp"
#include "obs/probes.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/log.hpp"

namespace cmc {
namespace {

using namespace literals;

struct CallOutcome {
  std::uint64_t signals = 0;
  bool a_hears_b = false;
  bool b_hears_a = false;
  double end_ms = 0;
};

// Run the canonical two-phone call for 2 s of virtual time, optionally with
// a recorder and registry installed, and report what happened.
CallOutcome runCall(std::uint64_t seed, obs::TraceRecorder* rec,
                    obs::MetricsRegistry* reg) {
  Simulator sim(TimingModel::paperDefaults(), seed);
  if (rec != nullptr) sim.attachTrace(rec);
  if (reg != nullptr) sim.attachMetrics(reg);
  auto& a = sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.1", 5000));
  auto& b = sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.2", 5000));
  sim.inject("A", [](Box& box) { static_cast<UserDeviceBox&>(box).placeCall("B"); });
  sim.runFor(2_s);
  CallOutcome out;
  out.signals = sim.signalsDelivered();
  out.a_hears_b = a.media().hears(b.media().id());
  out.b_hears_a = b.media().hears(a.media().id());
  out.end_ms = sim.now().millis();
  return out;
}

TEST(ObsTraceTest, IdenticalSeedsYieldByteIdenticalTraces) {
  obs::TraceRecorder first;
  obs::TraceRecorder second;
  runCall(/*seed=*/5, &first, nullptr);
  runCall(/*seed=*/5, &second, nullptr);
  ASSERT_GT(first.recorded(), 0u);
  EXPECT_EQ(first.recorded(), second.recorded());
  EXPECT_EQ(first.chromeTraceJson(), second.chromeTraceJson());
}

TEST(ObsTraceTest, RecorderOnVsOffIdenticalOutcomes) {
  obs::TraceRecorder rec;
  obs::MetricsRegistry reg;
  const CallOutcome off = runCall(/*seed=*/9, nullptr, nullptr);
  const CallOutcome on = runCall(/*seed=*/9, &rec, &reg);
  EXPECT_EQ(on.signals, off.signals);
  EXPECT_EQ(on.a_hears_b, off.a_hears_b);
  EXPECT_EQ(on.b_hears_a, off.b_hears_a);
  EXPECT_EQ(on.end_ms, off.end_ms);
  EXPECT_TRUE(off.a_hears_b);
  EXPECT_TRUE(off.b_hears_a);
}

TEST(ObsTraceTest, RingOverflowKeepsNewestWithDroppedCount) {
  obs::TraceRecorder rec(/*capacity=*/8);
  for (int i = 0; i < 20; ++i) {
    rec.record(obs::EventKind::mark, "e" + std::to_string(i), "t");
  }
  EXPECT_EQ(rec.recorded(), 20u);
  EXPECT_EQ(rec.dropped(), 12u);
  const std::vector<obs::TraceEvent> events = rec.snapshot();
  ASSERT_EQ(events.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(events[static_cast<std::size_t>(i)].name,
              "e" + std::to_string(12 + i));
  }
  EXPECT_NE(rec.chromeTraceJson().find("\"dropped_events\":12"),
            std::string::npos);
}

TEST(ObsTraceTest, SlotTransitionsAndSignalsRecorded) {
  obs::TraceRecorder rec;
  runCall(/*seed=*/3, &rec, nullptr);
  bool saw_flowing = false;
  bool saw_send_open = false;
  bool saw_recv_oack = false;
  bool saw_span = false;
  for (const obs::TraceEvent& ev : rec.snapshot()) {
    if (ev.kind == obs::EventKind::slotTransition && ev.name == "flowing") {
      saw_flowing = true;
      EXPECT_FALSE(ev.actor.empty());  // ActorScope attributed the box
    }
    if (ev.kind == obs::EventKind::signalSend && ev.name == "open") {
      saw_send_open = true;
    }
    if (ev.kind == obs::EventKind::signalRecv && ev.name == "oack") {
      saw_recv_oack = true;
    }
    if (ev.kind == obs::EventKind::boxSpan) {
      saw_span = true;
      EXPECT_EQ(ev.dur_us, 20'000);  // paper processing cost c = 20 ms
    }
  }
  EXPECT_TRUE(saw_flowing);
  EXPECT_TRUE(saw_send_open);
  EXPECT_TRUE(saw_recv_oack);
  EXPECT_TRUE(saw_span);
}

TEST(ObsMetricsTest, CountersPopulatedBySimulation) {
  obs::MetricsRegistry reg;
  runCall(/*seed=*/7, nullptr, &reg);
  const obs::Counter* stimuli = reg.findCounter("sim.stimuli");
  ASSERT_NE(stimuli, nullptr);
  EXPECT_GT(stimuli->value(), 0u);
  const obs::Counter* open = reg.findCounter("sim.signal.open");
  ASSERT_NE(open, nullptr);
  EXPECT_GE(open->value(), 1u);
  const obs::Counter* posted = reg.findCounter("goal.posted");
  ASSERT_NE(posted, nullptr);
  EXPECT_GE(posted->value(), 2u);  // both devices post goals
  const obs::Counter* achieved = reg.findCounter("goal.achieved");
  ASSERT_NE(achieved, nullptr);
  EXPECT_GE(achieved->value(), 1u);
  const std::string json = reg.json();
  EXPECT_NE(json.find("\"counters\""), std::string::npos);
  EXPECT_NE(json.find("\"sim.stimuli\""), std::string::npos);
}

TEST(ObsMetricsTest, HistogramQuantiles) {
  obs::MetricsRegistry reg;
  obs::Histogram& h = reg.histogram("test.latency");
  for (int i = 1; i <= 100; ++i) h.observe(i);
  EXPECT_EQ(h.count(), 100u);
  EXPECT_EQ(h.min(), 1);
  EXPECT_EQ(h.max(), 100);
  EXPECT_NEAR(h.mean(), 50.5, 0.01);
  EXPECT_GE(h.quantile(0.99), h.quantile(0.5));
  EXPECT_LE(h.quantile(1.0), 100.0);
}

TEST(ObsProbesTest, ProbeCapturesConvergenceLatency) {
  Simulator sim(TimingModel::paperDefaults(), 11);
  auto& a = sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.1", 5000));
  auto& b = sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.0.0.2", 5000));
  // Probes are re-evaluated after box stimuli, so the predicate must read
  // signaling-driven state (sendingState is set synchronously inside the
  // device's stimulus processing), not packet-arrival state like hears().
  sim.probes().arm("call_setup", "setup", sim.nowUs(), [&]() {
    const auto& sa = a.media().sendingState();
    const auto& sb = b.media().sendingState();
    return sa && sb && sa->target == b.media().address() &&
           sb->target == a.media().address() && !isNoMedia(sa->codec) &&
           !isNoMedia(sb->codec);
  });
  EXPECT_EQ(sim.probes().armedCount(), 1u);
  sim.inject("A", [](Box& box) { static_cast<UserDeviceBox&>(box).placeCall("B"); });
  sim.runFor(5_s);
  EXPECT_EQ(sim.probes().convergedCount(), 1u);
  const auto latency = sim.probes().latencyUs("call_setup");
  ASSERT_TRUE(latency.has_value());
  EXPECT_GT(*latency, 0);
  EXPECT_LT(*latency, 2'000'000);  // converged well before the horizon
  const obs::Histogram* h = sim.probes().histogram("setup");
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(h->count(), 1u);
  EXPECT_NE(sim.probes().json().find("\"setup\""), std::string::npos);
}

TEST(ObsProbesTest, UnsatisfiedProbeStaysArmed) {
  Simulator sim(TimingModel::paperDefaults(), 13);
  sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.0.0.1", 5000));
  sim.probes().arm("never", "never", sim.nowUs(), []() { return false; });
  sim.inject("A", [](Box&) {});
  sim.runFor(1_s);
  EXPECT_EQ(sim.probes().armedCount(), 1u);
  EXPECT_EQ(sim.probes().convergedCount(), 0u);
  EXPECT_FALSE(sim.probes().latencyUs("never").has_value());
}

TEST(ObsLogTest, TimestampsUseInjectedSimTime) {
  std::ostringstream sink;
  log::setSink(&sink);
  log::setLevel(log::Level::info);
  log::setSimTimeSource([]() { return std::int64_t{1'234'567}; });
  log::info("obs_test", "hello");
  log::setSimTimeSource(nullptr);
  log::setLevel(log::Level::none);
  log::setSink(nullptr);
  const std::string line = sink.str();
  EXPECT_EQ(line.rfind("[+1234.567ms]", 0), 0u) << line;
  EXPECT_NE(line.find("[INFO ]"), std::string::npos);
}

TEST(ObsLogTest, WallClockTimestampByDefault) {
  std::ostringstream sink;
  log::setSink(&sink);
  log::setLevel(log::Level::info);
  log::info("obs_test", "hello");
  log::setLevel(log::Level::none);
  log::setSink(nullptr);
  const std::string line = sink.str();
  // "[HH:MM:SS.mmm] " prefix: fixed punctuation at fixed offsets.
  ASSERT_GE(line.size(), 15u);
  EXPECT_EQ(line[0], '[');
  EXPECT_EQ(line[3], ':');
  EXPECT_EQ(line[6], ':');
  EXPECT_EQ(line[9], '.');
  EXPECT_EQ(line[13], ']');
}

TEST(ObsEventLoopTest, ExecutedCounterTracksSteps) {
  EventLoop loop;
  int fired = 0;
  for (int i = 0; i < 5; ++i) loop.schedule(1_ms, [&] { ++fired; });
  EXPECT_EQ(loop.executed(), 0u);
  loop.runUntilIdle();
  EXPECT_EQ(fired, 5);
  EXPECT_EQ(loop.executed(), 5u);
  EXPECT_GE(loop.peakPending(), 5u);
}

}  // namespace
}  // namespace cmc
