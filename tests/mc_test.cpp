// Tests for the model checker: exploration determinism, temporal checking
// on known graphs, the paper's 12-model verification suite (small budgets
// here; the full-budget campaign is bench_verification_table), and negative
// checks proving the checker can find violations.
#include <gtest/gtest.h>

#include "mc/seen_set.hpp"
#include "mc/verification.hpp"

namespace cmc {
namespace {

using K = GoalKind;

ExploreLimits quick() {
  ExploreLimits limits;
  limits.chaos_budget = 1;
  limits.modify_budget = 0;
  limits.max_states = 500'000;
  return limits;
}

TEST(Explore, DeterministicAcrossRuns) {
  auto a = explorePath(K::openSlot, K::holdSlot, 0, quick());
  auto b = explorePath(K::openSlot, K::holdSlot, 0, quick());
  EXPECT_EQ(a.states(), b.states());
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.terminals, b.terminals);
}

TEST(Explore, NoChaosOpenOpenIsTiny) {
  ExploreLimits limits = quick();
  limits.chaos_budget = 0;
  limits.defer_attach = false;
  auto graph = explorePath(K::openSlot, K::openSlot, 0, limits);
  EXPECT_LT(graph.states(), 50u);
  EXPECT_GE(graph.terminals, 1u);
  EXPECT_FALSE(graph.truncated);
}

TEST(Explore, TerminalsHaveSelfLoops) {
  ExploreLimits limits = quick();
  limits.chaos_budget = 0;
  limits.defer_attach = false;
  auto graph = explorePath(K::closeSlot, K::closeSlot, 0, limits);
  bool found_terminal = false;
  for (std::uint32_t s = 0; s < graph.states(); ++s) {
    if (!graph.bits[s].terminal) continue;
    found_terminal = true;
    EXPECT_EQ(graph.edges[s].size(), 1u);
    EXPECT_EQ(graph.edges[s][0], s);
  }
  EXPECT_TRUE(found_terminal);
}

TEST(Explore, TruncationIsReported) {
  ExploreLimits limits = quick();
  limits.max_states = 100;
  auto graph = explorePath(K::openSlot, K::openSlot, 1, limits);
  EXPECT_TRUE(graph.truncated);
  EXPECT_EQ(graph.states(), 100u);
}

TEST(Explore, TruncatedStatesAreMarkedUnexpanded) {
  ExploreLimits limits = quick();
  limits.max_states = 100;
  auto graph = explorePath(K::openSlot, K::openSlot, 1, limits);
  ASSERT_TRUE(graph.truncated);
  std::size_t unexpanded = 0;
  for (std::uint32_t s = 0; s < graph.states(); ++s) {
    if (graph.bits[s].expanded) continue;
    ++unexpanded;
    // Unexpanded states must contribute nothing the verifiers could read:
    // no outgoing edges, and no predicate bits.
    EXPECT_TRUE(graph.edges[s].empty());
    EXPECT_FALSE(graph.bits[s].terminal);
  }
  EXPECT_GT(unexpanded, 0u);
  // The safety check and the observables projection skip unexpanded states
  // instead of reading default-constructed bits: a default StateBits is
  // quiescent=false so it would also be skipped by accident, but the
  // expanded flag makes that robust rather than lucky.
  EXPECT_FALSE(checkSafety(graph).has_value());
  EXPECT_NO_FATAL_FAILURE({ auto observables = quiescentObservables(graph); (void)observables; });
}

TEST(Explore, FullRunMarksEveryStateExpanded) {
  auto graph = explorePath(K::openSlot, K::holdSlot, 0, quick());
  ASSERT_FALSE(graph.truncated);
  for (std::uint32_t s = 0; s < graph.states(); ++s) {
    EXPECT_TRUE(graph.bits[s].expanded) << "state " << s;
  }
}

// ------------------------------------------------------- collision safety

TEST(CollisionSafety, SeenSetKeepsCollidingStatesDistinct) {
  SeenSet seen(/*max_states=*/10);
  // Two different canonical encodings forced onto the same fingerprint.
  std::vector<std::uint8_t> a{1, 2, 3};
  std::vector<std::uint8_t> b{4, 5, 6, 7};
  auto first = seen.insert(42, std::vector<std::uint8_t>(a));
  EXPECT_TRUE(first.inserted);
  EXPECT_FALSE(first.collided);
  auto second = seen.insert(42, std::vector<std::uint8_t>(b));
  EXPECT_TRUE(second.inserted);
  EXPECT_TRUE(second.collided);
  EXPECT_NE(first.index, second.index);
  EXPECT_EQ(seen.collisions(), 1u);
  // Re-inserting either encoding is a dedup hit on its own index.
  auto again = seen.insert(42, std::vector<std::uint8_t>(a));
  EXPECT_FALSE(again.inserted);
  EXPECT_EQ(again.index, first.index);
  EXPECT_EQ(seen.hits(), 1u);
  EXPECT_EQ(seen.size(), 2u);
  EXPECT_EQ(seen.bytesRetained(), a.size() + b.size());
}

TEST(CollisionSafety, SeenSetEnforcesStateBudget) {
  SeenSet seen(/*max_states=*/2);
  EXPECT_TRUE(seen.insert(1, {1}).inserted);
  EXPECT_TRUE(seen.insert(2, {2}).inserted);
  auto over = seen.insert(3, {3});
  EXPECT_FALSE(over.inserted);
  EXPECT_EQ(over.index, SeenSet::kNoIndex);
  EXPECT_EQ(seen.size(), 2u);
}

TEST(CollisionSafety, MaskedFingerprintsDoNotMergeStates) {
  // Regression for the historical bug: dedup on the bare 64-bit fingerprint
  // merged any two states that collided. Coarsening the fingerprint to 8
  // bits forces constant collisions; byte verification must keep every
  // state distinct, so all counts match the full-fingerprint run exactly.
  ExploreLimits limits = quick();
  const auto full = explorePath(K::openSlot, K::holdSlot, 0, limits);
  EXPECT_EQ(full.stats.collisions, 0u);
  limits.fingerprint_mask = 0xFF;
  const auto masked = explorePath(K::openSlot, K::holdSlot, 0, limits);
  EXPECT_GT(masked.stats.collisions, 0u);
  EXPECT_EQ(masked.states(), full.states());
  EXPECT_EQ(masked.transitions, full.transitions);
  EXPECT_EQ(masked.terminals, full.terminals);
  EXPECT_EQ(quiescentObservables(masked), quiescentObservables(full));
}

TEST(CollisionSafety, MaskedVerdictsMatchUnmasked) {
  ExploreLimits limits = quick();
  limits.fingerprint_mask = 0xFF;
  for (const auto& config : paperVerificationSuite()) {
    if (config.flowlinks > 0) continue;  // keep this test fast
    auto outcome = verifyPath(config, limits);
    EXPECT_TRUE(outcome.ok()) << outcome.failure;
    EXPECT_GT(outcome.stats.collisions, 0u);
  }
}

// ------------------------------------------------------- explorer metrics

TEST(ExploreStatsTest, CountersAreCoherent) {
  auto graph = explorePath(K::openSlot, K::holdSlot, 0, quick());
  const ExploreStats& stats = graph.stats;
  EXPECT_EQ(stats.threads, 1u);
  EXPECT_EQ(stats.states, graph.states());
  EXPECT_EQ(stats.transitions, graph.transitions);
  EXPECT_EQ(stats.terminals, graph.terminals);
  EXPECT_EQ(stats.bytes_retained, graph.bytes_canonical);
  EXPECT_GT(stats.frontier_depth, 0u);
  EXPECT_GT(stats.peak_frontier, 0u);
  EXPECT_GE(stats.dedupRatio(), 0.0);
  EXPECT_LE(stats.dedupRatio(), 1.0);
  // Every recorded non-stutter edge either discovered a state or hit the
  // dedup set; stutters account for the terminals.
  EXPECT_EQ(stats.dedup_hits + stats.states + stats.terminals,
            stats.transitions + 1)  // +1: the initial state is not an edge
      << "edge accounting broke";
  EXPECT_FALSE(stats.truncated);
  const std::string json = stats.json("test", "openSlot/holdSlot/0");
  EXPECT_NE(json.find("\"states\":"), std::string::npos);
  EXPECT_NE(json.find("\"collisions\":"), std::string::npos);
  EXPECT_NE(json.find("\"truncated\":false"), std::string::npos);
}

TEST(Explore, TraceReconstructsFromInit) {
  ExploreLimits limits = quick();
  limits.chaos_budget = 0;
  limits.defer_attach = false;
  auto graph = explorePath(K::openSlot, K::holdSlot, 0, limits);
  ASSERT_GT(graph.states(), 1u);
  auto trace = graph.traceTo(static_cast<std::uint32_t>(graph.states() - 1));
  EXPECT_FALSE(trace.empty());
}

TEST(Explore, FlowlinkBlowupIsMultiplicative) {
  // The paper reports that adding one flowlink multiplies memory ~300x and
  // time ~1000x. Reproduce the shape: a large multiplicative state-space
  // growth per flowlink.
  auto flat = explorePath(K::openSlot, K::openSlot, 0, quick());
  auto linked = explorePath(K::openSlot, K::openSlot, 1, quick());
  EXPECT_GT(linked.states(), flat.states() * 10);
  EXPECT_GT(linked.transitions, flat.transitions * 10);
}

// ------------------------------------------------------ spec assignments

TEST(Specs, PaperAssignment) {
  EXPECT_EQ(specFor(K::closeSlot, K::closeSlot), PathSpec::eventuallyBothClosed);
  EXPECT_EQ(specFor(K::closeSlot, K::holdSlot), PathSpec::eventuallyBothClosed);
  EXPECT_EQ(specFor(K::holdSlot, K::closeSlot), PathSpec::eventuallyBothClosed);
  EXPECT_EQ(specFor(K::closeSlot, K::openSlot), PathSpec::neverBothFlowing);
  EXPECT_EQ(specFor(K::openSlot, K::openSlot), PathSpec::recurrentlyBothFlowing);
  EXPECT_EQ(specFor(K::openSlot, K::holdSlot), PathSpec::recurrentlyBothFlowing);
  EXPECT_EQ(specFor(K::holdSlot, K::holdSlot), PathSpec::closedOrFlowing);
}

TEST(Specs, SuiteHasTwelveModels) {
  auto suite = paperVerificationSuite();
  ASSERT_EQ(suite.size(), 12u);
  std::size_t with_link = 0;
  for (const auto& c : suite) with_link += c.flowlinks;
  EXPECT_EQ(with_link, 6u);
}

// ------------------------------------------- verification (small budgets)

class VerifySuite : public ::testing::TestWithParam<int> {};

TEST_P(VerifySuite, ModelSatisfiesSafetyAndSpec) {
  const auto suite = paperVerificationSuite();
  const auto config = suite[static_cast<std::size_t>(GetParam())];
  auto outcome = verifyPath(config, quick());
  EXPECT_TRUE(outcome.safety_ok) << outcome.failure;
  EXPECT_TRUE(outcome.spec_ok) << outcome.failure;
  EXPECT_FALSE(outcome.truncated);
  EXPECT_GT(outcome.states, 0u);
}

INSTANTIATE_TEST_SUITE_P(PaperModels, VerifySuite, ::testing::Range(0, 12));

TEST(VerifyWithPerturbations, OpenOpenSurvivesModifies) {
  ExploreLimits limits = quick();
  limits.modify_budget = 1;
  auto outcome = verifyPath({K::openSlot, K::openSlot, 0}, limits);
  EXPECT_TRUE(outcome.ok()) << outcome.failure;
}

TEST(VerifyWithPerturbations, HoldHoldSurvivesModifies) {
  ExploreLimits limits = quick();
  limits.modify_budget = 1;
  auto outcome = verifyPath({K::holdSlot, K::holdSlot, 0}, limits);
  EXPECT_TRUE(outcome.ok()) << outcome.failure;
}

// --------------------------------------------------------- negative tests
// The checker must be able to FIND violations; check wrong specs against
// correct systems.

TEST(NegativeChecks, OpenOpenViolatesBothClosedStability) {
  auto graph = explorePath(K::openSlot, K::openSlot, 0, quick());
  // An open/open path converges to flowing, so <>[] bothClosed must fail.
  auto violation = checkSpec(graph, PathSpec::eventuallyBothClosed);
  ASSERT_TRUE(violation.has_value());
  EXPECT_FALSE(graph.traceTo(violation->witness_state).empty());
}

TEST(NegativeChecks, OpenOpenViolatesNeverBothFlowing) {
  auto graph = explorePath(K::openSlot, K::openSlot, 0, quick());
  EXPECT_TRUE(checkSpec(graph, PathSpec::neverBothFlowing).has_value());
}

TEST(NegativeChecks, CloseCloseViolatesRecurrentFlowing) {
  auto graph = explorePath(K::closeSlot, K::closeSlot, 0, quick());
  EXPECT_TRUE(checkSpec(graph, PathSpec::recurrentlyBothFlowing).has_value());
}

TEST(NegativeChecks, CloseOpenSatisfiesDisjunctionVacuouslyFails) {
  // close/open livelocks outside bothClosed and never reaches bothFlowing:
  // the hold/hold disjunction must FAIL on it (the openslot retry cycle is
  // not bothClosed at every state and never bothFlowing).
  auto graph = explorePath(K::closeSlot, K::openSlot, 0, quick());
  EXPECT_TRUE(checkSpec(graph, PathSpec::closedOrFlowing).has_value());
}

// ----------------------------------------------------- temporal primitives

TEST(TemporalPrimitives, SelfLoopCountsAsCycle) {
  // Build a minimal graph by exploring the trivial close/close system and
  // checking that its terminal (bothClosed) self-loop satisfies <>[]
  // bothClosed but violates []<> bothFlowing.
  ExploreLimits limits = quick();
  limits.chaos_budget = 0;
  limits.defer_attach = false;
  auto graph = explorePath(K::closeSlot, K::closeSlot, 0, limits);
  EXPECT_FALSE(checkEventuallyAlways(
                   graph, [](const StateBits& b) { return b.bothClosed; })
                   .has_value());
  EXPECT_TRUE(checkAlwaysEventually(
                  graph, [](const StateBits& b) { return b.bothFlowing; })
                  .has_value());
}

TEST(TemporalPrimitives, SafetyHoldsOnAllPaperModels) {
  for (const auto& config : paperVerificationSuite()) {
    if (config.flowlinks > 0) continue;  // keep this test fast
    auto graph = explorePath(config.left, config.right, 0, quick());
    EXPECT_FALSE(checkSafety(graph).has_value())
        << toString(config.left) << "/" << toString(config.right);
  }
}

}  // namespace
}  // namespace cmc
