// Tests for the model checker: exploration determinism, temporal checking
// on known graphs, the paper's 12-model verification suite (small budgets
// here; the full-budget campaign is bench_verification_table), and negative
// checks proving the checker can find violations.
#include <gtest/gtest.h>

#include "mc/verification.hpp"

namespace cmc {
namespace {

using K = GoalKind;

ExploreLimits quick() {
  ExploreLimits limits;
  limits.chaos_budget = 1;
  limits.modify_budget = 0;
  limits.max_states = 500'000;
  return limits;
}

TEST(Explore, DeterministicAcrossRuns) {
  auto a = explorePath(K::openSlot, K::holdSlot, 0, quick());
  auto b = explorePath(K::openSlot, K::holdSlot, 0, quick());
  EXPECT_EQ(a.states(), b.states());
  EXPECT_EQ(a.transitions, b.transitions);
  EXPECT_EQ(a.terminals, b.terminals);
}

TEST(Explore, NoChaosOpenOpenIsTiny) {
  ExploreLimits limits = quick();
  limits.chaos_budget = 0;
  limits.defer_attach = false;
  auto graph = explorePath(K::openSlot, K::openSlot, 0, limits);
  EXPECT_LT(graph.states(), 50u);
  EXPECT_GE(graph.terminals, 1u);
  EXPECT_FALSE(graph.truncated);
}

TEST(Explore, TerminalsHaveSelfLoops) {
  ExploreLimits limits = quick();
  limits.chaos_budget = 0;
  limits.defer_attach = false;
  auto graph = explorePath(K::closeSlot, K::closeSlot, 0, limits);
  bool found_terminal = false;
  for (std::uint32_t s = 0; s < graph.states(); ++s) {
    if (!graph.bits[s].terminal) continue;
    found_terminal = true;
    EXPECT_EQ(graph.edges[s].size(), 1u);
    EXPECT_EQ(graph.edges[s][0], s);
  }
  EXPECT_TRUE(found_terminal);
}

TEST(Explore, TruncationIsReported) {
  ExploreLimits limits = quick();
  limits.max_states = 100;
  auto graph = explorePath(K::openSlot, K::openSlot, 1, limits);
  EXPECT_TRUE(graph.truncated);
  EXPECT_EQ(graph.states(), 100u);
}

TEST(Explore, TraceReconstructsFromInit) {
  ExploreLimits limits = quick();
  limits.chaos_budget = 0;
  limits.defer_attach = false;
  auto graph = explorePath(K::openSlot, K::holdSlot, 0, limits);
  ASSERT_GT(graph.states(), 1u);
  auto trace = graph.traceTo(static_cast<std::uint32_t>(graph.states() - 1));
  EXPECT_FALSE(trace.empty());
}

TEST(Explore, FlowlinkBlowupIsMultiplicative) {
  // The paper reports that adding one flowlink multiplies memory ~300x and
  // time ~1000x. Reproduce the shape: a large multiplicative state-space
  // growth per flowlink.
  auto flat = explorePath(K::openSlot, K::openSlot, 0, quick());
  auto linked = explorePath(K::openSlot, K::openSlot, 1, quick());
  EXPECT_GT(linked.states(), flat.states() * 10);
  EXPECT_GT(linked.transitions, flat.transitions * 10);
}

// ------------------------------------------------------ spec assignments

TEST(Specs, PaperAssignment) {
  EXPECT_EQ(specFor(K::closeSlot, K::closeSlot), PathSpec::eventuallyBothClosed);
  EXPECT_EQ(specFor(K::closeSlot, K::holdSlot), PathSpec::eventuallyBothClosed);
  EXPECT_EQ(specFor(K::holdSlot, K::closeSlot), PathSpec::eventuallyBothClosed);
  EXPECT_EQ(specFor(K::closeSlot, K::openSlot), PathSpec::neverBothFlowing);
  EXPECT_EQ(specFor(K::openSlot, K::openSlot), PathSpec::recurrentlyBothFlowing);
  EXPECT_EQ(specFor(K::openSlot, K::holdSlot), PathSpec::recurrentlyBothFlowing);
  EXPECT_EQ(specFor(K::holdSlot, K::holdSlot), PathSpec::closedOrFlowing);
}

TEST(Specs, SuiteHasTwelveModels) {
  auto suite = paperVerificationSuite();
  ASSERT_EQ(suite.size(), 12u);
  std::size_t with_link = 0;
  for (const auto& c : suite) with_link += c.flowlinks;
  EXPECT_EQ(with_link, 6u);
}

// ------------------------------------------- verification (small budgets)

class VerifySuite : public ::testing::TestWithParam<int> {};

TEST_P(VerifySuite, ModelSatisfiesSafetyAndSpec) {
  const auto suite = paperVerificationSuite();
  const auto config = suite[static_cast<std::size_t>(GetParam())];
  auto outcome = verifyPath(config, quick());
  EXPECT_TRUE(outcome.safety_ok) << outcome.failure;
  EXPECT_TRUE(outcome.spec_ok) << outcome.failure;
  EXPECT_FALSE(outcome.truncated);
  EXPECT_GT(outcome.states, 0u);
}

INSTANTIATE_TEST_SUITE_P(PaperModels, VerifySuite, ::testing::Range(0, 12));

TEST(VerifyWithPerturbations, OpenOpenSurvivesModifies) {
  ExploreLimits limits = quick();
  limits.modify_budget = 1;
  auto outcome = verifyPath({K::openSlot, K::openSlot, 0}, limits);
  EXPECT_TRUE(outcome.ok()) << outcome.failure;
}

TEST(VerifyWithPerturbations, HoldHoldSurvivesModifies) {
  ExploreLimits limits = quick();
  limits.modify_budget = 1;
  auto outcome = verifyPath({K::holdSlot, K::holdSlot, 0}, limits);
  EXPECT_TRUE(outcome.ok()) << outcome.failure;
}

// --------------------------------------------------------- negative tests
// The checker must be able to FIND violations; check wrong specs against
// correct systems.

TEST(NegativeChecks, OpenOpenViolatesBothClosedStability) {
  auto graph = explorePath(K::openSlot, K::openSlot, 0, quick());
  // An open/open path converges to flowing, so <>[] bothClosed must fail.
  auto violation = checkSpec(graph, PathSpec::eventuallyBothClosed);
  ASSERT_TRUE(violation.has_value());
  EXPECT_FALSE(graph.traceTo(violation->witness_state).empty());
}

TEST(NegativeChecks, OpenOpenViolatesNeverBothFlowing) {
  auto graph = explorePath(K::openSlot, K::openSlot, 0, quick());
  EXPECT_TRUE(checkSpec(graph, PathSpec::neverBothFlowing).has_value());
}

TEST(NegativeChecks, CloseCloseViolatesRecurrentFlowing) {
  auto graph = explorePath(K::closeSlot, K::closeSlot, 0, quick());
  EXPECT_TRUE(checkSpec(graph, PathSpec::recurrentlyBothFlowing).has_value());
}

TEST(NegativeChecks, CloseOpenSatisfiesDisjunctionVacuouslyFails) {
  // close/open livelocks outside bothClosed and never reaches bothFlowing:
  // the hold/hold disjunction must FAIL on it (the openslot retry cycle is
  // not bothClosed at every state and never bothFlowing).
  auto graph = explorePath(K::closeSlot, K::openSlot, 0, quick());
  EXPECT_TRUE(checkSpec(graph, PathSpec::closedOrFlowing).has_value());
}

// ----------------------------------------------------- temporal primitives

TEST(TemporalPrimitives, SelfLoopCountsAsCycle) {
  // Build a minimal graph by exploring the trivial close/close system and
  // checking that its terminal (bothClosed) self-loop satisfies <>[]
  // bothClosed but violates []<> bothFlowing.
  ExploreLimits limits = quick();
  limits.chaos_budget = 0;
  limits.defer_attach = false;
  auto graph = explorePath(K::closeSlot, K::closeSlot, 0, limits);
  EXPECT_FALSE(checkEventuallyAlways(
                   graph, [](const StateBits& b) { return b.bothClosed; })
                   .has_value());
  EXPECT_TRUE(checkAlwaysEventually(
                  graph, [](const StateBits& b) { return b.bothFlowing; })
                  .has_value());
}

TEST(TemporalPrimitives, SafetyHoldsOnAllPaperModels) {
  for (const auto& config : paperVerificationSuite()) {
    if (config.flowlinks > 0) continue;  // keep this test fast
    auto graph = explorePath(config.left, config.right, 0, quick());
    EXPECT_FALSE(checkSafety(graph).has_value())
        << toString(config.left) << "/" << toString(config.right);
  }
}

}  // namespace
}  // namespace cmc
