// Unit tests for src/codec: codec registry, descriptors, selectors, and the
// unilateral codec-choice rule of paper Section VI-B.
#include <gtest/gtest.h>

#include <sstream>

#include "codec/codec.hpp"
#include "codec/descriptor.hpp"

namespace cmc {
namespace {

TEST(CodecRegistry, InfoForKnownCodecs) {
  EXPECT_EQ(info(Codec::g711u).medium, Medium::audio);
  EXPECT_EQ(info(Codec::g711u).bandwidth_kbps, 64u);
  EXPECT_EQ(info(Codec::h263).medium, Medium::video);
  EXPECT_EQ(info(Codec::t140).medium, Medium::text);
}

TEST(CodecRegistry, G711HigherFidelityThanG726) {
  // The paper's example: G.726 is lower-fidelity/bandwidth than G.711.
  EXPECT_GT(info(Codec::g711u).fidelity, info(Codec::g726).fidelity);
  EXPECT_GT(info(Codec::g711u).bandwidth_kbps, info(Codec::g726).bandwidth_kbps);
}

TEST(CodecRegistry, NameLookup) {
  EXPECT_EQ(codecFromName("G.711u"), Codec::g711u);
  EXPECT_EQ(codecFromName("noMedia"), Codec::noMedia);
  EXPECT_EQ(codecFromName("bogus"), std::nullopt);
}

TEST(CodecRegistry, CodecsForMediumSortedByFidelity) {
  auto audio = codecsFor(Medium::audio);
  ASSERT_GE(audio.size(), 3u);
  for (std::size_t i = 1; i < audio.size(); ++i) {
    EXPECT_GE(info(audio[i - 1]).fidelity, info(audio[i]).fidelity);
  }
  for (Codec c : audio) EXPECT_TRUE(codecMatchesMedium(c, Medium::audio));
}

TEST(CodecRegistry, CodecsForIsCachedAndOrderStable) {
  // codecsFor returns a view of a per-process static table: repeated calls
  // alias the same storage (no per-call rebuild) and the order never varies.
  auto a = codecsFor(Medium::audio);
  auto b = codecsFor(Medium::audio);
  EXPECT_EQ(a.data(), b.data());
  EXPECT_EQ(a.size(), b.size());
  // Exact expected order: fidelity descending, registry order among ties
  // (g711u before g711a, both fidelity 6).
  const std::vector<Codec> want{Codec::l16,  Codec::g711u, Codec::g711a,
                                Codec::g722, Codec::g726,  Codec::g729,
                                Codec::gsmFr};
  ASSERT_EQ(a.size(), want.size());
  for (std::size_t i = 0; i < want.size(); ++i) EXPECT_EQ(a[i], want[i]);
  // Video table is independent and also stable.
  auto v1 = codecsFor(Medium::video);
  auto v2 = codecsFor(Medium::video);
  EXPECT_EQ(v1.data(), v2.data());
  EXPECT_EQ(v1.front(), Codec::mpeg2);
}

TEST(CodecRegistry, NoMediaMatchesNoMedium) {
  EXPECT_FALSE(codecMatchesMedium(Codec::noMedia, Medium::audio));
  EXPECT_FALSE(codecMatchesMedium(Codec::noMedia, Medium::data));
  EXPECT_TRUE(isNoMedia(Codec::noMedia));
  EXPECT_FALSE(isNoMedia(Codec::g729));
}

TEST(MediaAddress, ParseAndFormat) {
  auto addr = MediaAddress::parse("192.168.1.20", 5004);
  EXPECT_EQ(addr.toString(), "192.168.1.20:5004");
  EXPECT_EQ(addr.ip, 0xc0a80114u);
}

TEST(MediaAddress, Equality) {
  EXPECT_EQ(MediaAddress::parse("10.0.0.1", 5), MediaAddress::parse("10.0.0.1", 5));
  EXPECT_NE(MediaAddress::parse("10.0.0.1", 5), MediaAddress::parse("10.0.0.2", 5));
}

class DescriptorTest : public ::testing::Test {
 protected:
  MediaAddress addr_ = MediaAddress::parse("10.1.2.3", 4000);
  std::vector<Codec> audio_{Codec::g711u, Codec::g726};
};

TEST_F(DescriptorTest, MakeDescriptorOffersCodecs) {
  auto d = makeDescriptor(DescriptorId{1}, addr_, audio_, /*muteIn=*/false);
  EXPECT_FALSE(d.isNoMedia());
  EXPECT_TRUE(d.wellFormed());
  EXPECT_EQ(d.codecs, CodecList(audio_.begin(), audio_.end()));
}

TEST_F(DescriptorTest, MuteInProducesNoMediaDescriptor) {
  // Paper: "If the endpoint does not wish to receive media, i.e. muteIn is
  // true, then the only offered codec is noMedia."
  auto d = makeDescriptor(DescriptorId{2}, addr_, audio_, /*muteIn=*/true);
  EXPECT_TRUE(d.isNoMedia());
  EXPECT_TRUE(d.wellFormed());
}

TEST_F(DescriptorTest, WellFormedRejectsMixedNoMedia) {
  Descriptor d;
  d.id = DescriptorId{3};
  d.codecs = {Codec::g711u, Codec::noMedia};
  EXPECT_FALSE(d.wellFormed());
  d.codecs.clear();
  EXPECT_FALSE(d.wellFormed());
}

TEST_F(DescriptorTest, SerializationRoundTrip) {
  auto d = makeDescriptor(DescriptorId{77}, addr_, audio_, false);
  ByteWriter w;
  d.serialize(w);
  ByteReader r{w.bytes()};
  auto back = Descriptor::deserialize(r);
  EXPECT_TRUE(r.ok());
  EXPECT_EQ(back, d);
}

TEST_F(DescriptorTest, StreamFormatMentionsCodecs) {
  auto d = makeDescriptor(DescriptorId{5}, addr_, audio_, false);
  std::ostringstream oss;
  oss << d;
  EXPECT_NE(oss.str().find("G.711u"), std::string::npos);
}

TEST(Selector, SerializationRoundTrip) {
  Selector s{DescriptorId{9}, MediaAddress::parse("10.0.0.9", 1234), Codec::g726};
  ByteWriter w;
  s.serialize(w);
  ByteReader r{w.bytes()};
  EXPECT_EQ(Selector::deserialize(r), s);
  EXPECT_TRUE(r.ok());
}

class CodecChoiceTest : public ::testing::Test {
 protected:
  Descriptor offer(std::initializer_list<Codec> codecs) {
    Descriptor d;
    d.id = DescriptorId{1};
    d.addr = MediaAddress::parse("10.0.0.1", 2000);
    d.codecs = codecs;
    return d;
  }
};

TEST_F(CodecChoiceTest, PicksHighestPriorityCommon) {
  // Receiver prefers g711u, then g726; sender supports both -> g711u.
  auto d = offer({Codec::g711u, Codec::g726});
  const Codec sendable[] = {Codec::g726, Codec::g711u};
  EXPECT_EQ(chooseCodec(d, sendable, false), Codec::g711u);
}

TEST_F(CodecChoiceTest, RespectsReceiverPriorityOrder) {
  // Receiver prefers the lower-fidelity codec; the sender must honor that.
  auto d = offer({Codec::g726, Codec::g711u});
  const Codec sendable[] = {Codec::g711u, Codec::g726};
  EXPECT_EQ(chooseCodec(d, sendable, false), Codec::g726);
}

TEST_F(CodecChoiceTest, MuteOutForcesNoMedia) {
  auto d = offer({Codec::g711u});
  const Codec sendable[] = {Codec::g711u};
  EXPECT_EQ(chooseCodec(d, sendable, true), Codec::noMedia);
}

TEST_F(CodecChoiceTest, NoMediaDescriptorForcesNoMediaSelector) {
  // Paper: "The only legal response to a descriptor noMedia is a selector
  // noMedia."
  auto d = offer({Codec::noMedia});
  const Codec sendable[] = {Codec::g711u};
  EXPECT_EQ(chooseCodec(d, sendable, false), Codec::noMedia);
}

TEST_F(CodecChoiceTest, NoCommonCodecDegradesToNoMedia) {
  auto d = offer({Codec::g729});
  const Codec sendable[] = {Codec::g711u};
  EXPECT_EQ(chooseCodec(d, sendable, false), Codec::noMedia);
}

TEST_F(CodecChoiceTest, MakeSelectorCarriesSenderAddressAndDescriptorId) {
  auto d = offer({Codec::g711u});
  auto sender = MediaAddress::parse("10.9.9.9", 3333);
  const Codec sendable[] = {Codec::g711u};
  auto s = makeSelector(d, sender, sendable, false);
  EXPECT_EQ(s.answersDescriptor, d.id);
  EXPECT_EQ(s.sender, sender);
  EXPECT_EQ(s.codec, Codec::g711u);
  EXPECT_FALSE(s.isNoMedia());
}

// Property sweep: for every audio codec pair (receiver preference, sender
// capability), the chosen codec is either noMedia or in both lists, and
// honors the receiver's order.
class CodecChoiceProperty
    : public ::testing::TestWithParam<std::tuple<Codec, Codec>> {};

TEST_P(CodecChoiceProperty, ChoiceIsSoundAndComplete) {
  auto [preferred, capable] = GetParam();
  Descriptor d;
  d.id = DescriptorId{1};
  d.codecs = {preferred};
  const Codec sendable[] = {capable};
  Codec chosen = chooseCodec(d, sendable, false);
  if (preferred == capable && preferred != Codec::noMedia) {
    EXPECT_EQ(chosen, preferred);
  } else {
    EXPECT_EQ(chosen, Codec::noMedia);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllAudioPairs, CodecChoiceProperty,
    ::testing::Combine(::testing::Values(Codec::g711u, Codec::g711a, Codec::g722,
                                         Codec::g726, Codec::g729, Codec::noMedia),
                       ::testing::Values(Codec::g711u, Codec::g711a, Codec::g722,
                                         Codec::g726, Codec::g729)));

}  // namespace
}  // namespace cmc
