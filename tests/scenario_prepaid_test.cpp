// End-to-end reproduction of the paper's running example (Sections II-A,
// II-C; Figs. 2 and 3): telephone A behind an IP PBX, held call to B, a
// prepaid-card call from C supervised by server PC with voice resource V.
//
// Figure 2 shows what goes wrong when servers forward media signals
// blindly; Figure 3 shows the four snapshots under compositional control.
// These tests assert the *correct* behavior of each snapshot, i.e. that the
// pathologies of Fig. 2 do not occur:
//   snapshot 1: A talks to C; B is silent (held), and B also STOPS SENDING
//               (Fig. 2 left B transmitting to a deaf endpoint);
//   snapshot 2: C talks to V both ways (Fig. 2 cut V's input from C);
//   snapshot 3: A talks to B again; C<->V is UNAFFECTED by the PBX switch;
//   snapshot 4: PC reconnects C toward A, but the PBX still links A to B:
//               proximity confers priority — A is NOT hijacked (Fig. 2
//               switched A without permission), and C hears silence until
//               the user of A switches back.
// Finally, the Fig. 13 case: PBX and PC change state at the same instant
// and the path still converges to A<->C media.
#include <gtest/gtest.h>

#include "apps/pbx.hpp"
#include "apps/prepaid.hpp"
#include "endpoints/resources.hpp"
#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

namespace cmc {
namespace {

using namespace literals;

class PrepaidScenario : public ::testing::Test {
 protected:
  PrepaidScenario()
      : sim_(TimingModel::paperDefaults(), 7),
        a_(sim_.addBox<UserDeviceBox>("A", sim_.mediaNetwork(), sim_.loop(),
                                      MediaAddress::parse("10.0.0.1", 5000))),
        b_(sim_.addBox<UserDeviceBox>("B", sim_.mediaNetwork(), sim_.loop(),
                                      MediaAddress::parse("10.0.0.2", 5000))),
        c_(sim_.addBox<UserDeviceBox>("C", sim_.mediaNetwork(), sim_.loop(),
                                      MediaAddress::parse("10.0.0.3", 5000))),
        v_(sim_.addBox<VoiceResourceBox>("V", sim_.mediaNetwork(), sim_.loop(),
                                         MediaAddress::parse("10.0.0.9", 5900))),
        pbx_(sim_.addBox<PbxBox>("PBX", "A")),
        pc_(sim_.addBox<PrepaidCardBox>("PC", "PBX", "V", talk_time_)) {
    // A's permanent line to its PBX.
    sim_.connect("A", "PBX");
    // Collecting an authorization takes a while (announcement + touch
    // tones); keep it long enough that snapshots 2 and 3 are observable.
    v_.authorizeAfter = 4_s;
  }

  // Establish the pre-history: A talking to B, then C's prepaid call
  // arrives and A switches to it (snapshot 1).
  void reachSnapshot1() {
    sim_.inject("A", [](Box& b) { static_cast<UserDeviceBox&>(b).callOnLine(); });
    sim_.runFor(300_ms);
    sim_.inject("PBX", [](Box& b) { static_cast<PbxBox&>(b).dial("B"); });
    sim_.runFor(1_s);
    ASSERT_TRUE(a_.media().hears(b_.media().id()));
    // C uses the prepaid card to call A.
    sim_.inject("C", [](Box& b) { static_cast<UserDeviceBox&>(b).placeCall("PC"); });
    sim_.runFor(1_s);
    ASSERT_TRUE(pbx_.hasCall("PC"));
    // A is notified and switches to the incoming call.
    sim_.inject("PBX", [](Box& b) { static_cast<PbxBox&>(b).switchTo("PC"); });
    sim_.runFor(1_s);
  }

  void clearAllStats() {
    a_.media().resetStats();
    b_.media().resetStats();
    c_.media().resetStats();
    v_.media().resetStats();
  }

  static constexpr SimDuration talk_time_ = 5_s;  // prepaid talk time

  Simulator sim_;
  UserDeviceBox& a_;
  UserDeviceBox& b_;
  UserDeviceBox& c_;
  VoiceResourceBox& v_;
  PbxBox& pbx_;
  PrepaidCardBox& pc_;
};

TEST_F(PrepaidScenario, Snapshot1_ATalksToC_BHeldAndSilent) {
  reachSnapshot1();
  clearAllStats();
  sim_.runFor(1_s);
  EXPECT_TRUE(a_.media().hears(c_.media().id()));
  EXPECT_TRUE(c_.media().hears(a_.media().id()));
  // B is on hold: hears nothing...
  EXPECT_FALSE(b_.media().hears(a_.media().id()));
  // ...and, crucially, was told to stop sending (Fig. 2 pathology: B kept
  // transmitting to an endpoint that threw the packets away).
  EXPECT_FALSE(b_.media().sendingNow());
  EXPECT_EQ(pc_.state(), PrepaidCardBox::State::talking);
}

TEST_F(PrepaidScenario, Snapshot2_FundsExhausted_CTalksToVBothWays) {
  reachSnapshot1();
  sim_.runFor(talk_time_);  // the prepaid timer fires
  ASSERT_EQ(pc_.state(), PrepaidCardBox::State::collecting);
  clearAllStats();
  sim_.runFor(1_s);
  // C and V are connected BOTH ways (Fig. 2 pathology: media between C and
  // V became one-way after the PBX's interference).
  EXPECT_TRUE(c_.media().hears(v_.media().id()));
  EXPECT_TRUE(v_.media().hears(c_.media().id()));
  // A neither hears nor reaches C.
  EXPECT_FALSE(a_.media().hears(c_.media().id()));
  EXPECT_FALSE(c_.media().hears(a_.media().id()));
}

TEST_F(PrepaidScenario, Snapshot3_SwitchBackToB_CVUnaffected) {
  reachSnapshot1();
  sim_.runFor(talk_time_);  // collecting
  ASSERT_EQ(pc_.state(), PrepaidCardBox::State::collecting);
  // A switches back to B while C is talking to V.
  sim_.inject("PBX", [](Box& b) { static_cast<PbxBox&>(b).switchTo("B"); });
  sim_.runFor(1_s);
  clearAllStats();
  sim_.runFor(1_s);
  EXPECT_TRUE(a_.media().hears(b_.media().id()));
  EXPECT_TRUE(b_.media().hears(a_.media().id()));
  // The PBX's switch must NOT break the C<->V channel (Fig. 2 pathology:
  // the forwarded "stop sending" signal cut V's audio input from C).
  EXPECT_TRUE(v_.media().hears(c_.media().id()));
  EXPECT_TRUE(c_.media().hears(v_.media().id()));
}

TEST_F(PrepaidScenario, Snapshot4_ProximityConfersPriority_ANotHijacked) {
  reachSnapshot1();
  sim_.runFor(talk_time_);  // collecting; V will detect C's audio and accept
  ASSERT_EQ(pc_.state(), PrepaidCardBox::State::collecting);
  sim_.inject("PBX", [](Box& b) { static_cast<PbxBox&>(b).switchTo("B"); });
  // Wait for V to confirm payment -> PC returns to talking (snapshot 4).
  sim_.runFor(5_s);
  ASSERT_EQ(pc_.state(), PrepaidCardBox::State::talking);
  clearAllStats();
  sim_.runFor(1_s);
  // PC reconnected C toward A, but the PBX (closer to A) still links A to
  // B. A must NOT be switched without its PBX's consent (Fig. 2 pathology),
  // and B must not end up talking to a deaf endpoint.
  EXPECT_TRUE(a_.media().hears(b_.media().id()));
  EXPECT_TRUE(b_.media().hears(a_.media().id()));
  EXPECT_FALSE(a_.media().hears(c_.media().id()));
  EXPECT_FALSE(c_.media().hears(a_.media().id()));
  // V is disconnected from C.
  EXPECT_FALSE(v_.media().hears(c_.media().id()));
}

TEST_F(PrepaidScenario, Fig13_ConcurrentRelinkConverges) {
  // From snapshot 3: PC completes authorization and the PBX switches back
  // to the prepaid call at the same instant. Both servers relink
  // concurrently; the descriptors/selectors must still converge to full
  // A<->C media (the paper's informal convergence argument, Fig. 13).
  reachSnapshot1();
  sim_.runFor(talk_time_);
  ASSERT_EQ(pc_.state(), PrepaidCardBox::State::collecting);
  sim_.inject("PBX", [](Box& b) { static_cast<PbxBox&>(b).switchTo("B"); });
  sim_.runFor(1_s);
  // Simultaneous: V confirms funds (PC relinks c<->a) and the user of A
  // switches back to the prepaid call (PBX relinks line<->PC).
  sim_.inject("PC", [](Box& b) {
    b.deliverMeta(ChannelId{}, MetaSignal{MetaKind::custom, "paid", ""});
  });
  sim_.inject("PBX", [](Box& b) { static_cast<PbxBox&>(b).switchTo("PC"); });
  sim_.runFor(2_s);
  clearAllStats();
  sim_.runFor(1_s);
  EXPECT_TRUE(a_.media().hears(c_.media().id()));
  EXPECT_TRUE(c_.media().hears(a_.media().id()));
  EXPECT_FALSE(b_.media().sendingNow());
}

TEST_F(PrepaidScenario, PayCycleRepeats) {
  // talking -> collecting -> paid -> talking -> collecting again.
  reachSnapshot1();
  sim_.runFor(talk_time_);
  ASSERT_EQ(pc_.state(), PrepaidCardBox::State::collecting);
  sim_.runFor(5_s);  // V hears C for authorizeAfter, sends "paid"
  EXPECT_EQ(pc_.state(), PrepaidCardBox::State::talking);
  EXPECT_EQ(pc_.timesCollected(), 1);
  sim_.runFor(talk_time_ + 1_s);  // next talk-time expiry
  EXPECT_EQ(pc_.state(), PrepaidCardBox::State::collecting);
  EXPECT_EQ(pc_.timesCollected(), 2);
}

TEST_F(PrepaidScenario, CallerHangupTearsFeatureDown) {
  reachSnapshot1();
  sim_.inject("C", [](Box& b) { static_cast<UserDeviceBox&>(b).hangUp(); });
  sim_.runFor(2_s);
  EXPECT_EQ(pc_.state(), PrepaidCardBox::State::idle);
  clearAllStats();
  sim_.runFor(500_ms);
  EXPECT_FALSE(a_.media().hears(c_.media().id()));
  EXPECT_FALSE(v_.media().hears(c_.media().id()));
}

}  // namespace
}  // namespace cmc
