// Unit tests for src/protocol: signal serialization and the slot protocol
// FSM of paper Fig. 9, including race handling.
#include <gtest/gtest.h>

#include "protocol/signal.hpp"
#include "protocol/slot_endpoint.hpp"

namespace cmc {
namespace {

Descriptor desc(std::uint64_t id, bool muted = false) {
  const Codec codecs[] = {Codec::g711u, Codec::g726};
  return makeDescriptor(DescriptorId{id},
                        MediaAddress::parse("10.0.0.1", 5000),
                        muted ? std::span<const Codec>{} : std::span<const Codec>{codecs},
                        muted);
}

Selector sel(std::uint64_t answers, Codec codec = Codec::g711u) {
  return Selector{DescriptorId{answers}, MediaAddress::parse("10.0.0.2", 5002), codec};
}

TEST(SignalSerialization, AllKindsRoundTrip) {
  const Signal signals[] = {
      OpenSignal{Medium::audio, desc(1)},
      OackSignal{desc(2)},
      CloseSignal{},
      CloseAckSignal{},
      DescribeSignal{desc(3, true)},
      SelectSignal{sel(3, Codec::noMedia)},
  };
  for (const Signal& s : signals) {
    ByteWriter w;
    serialize(s, w);
    ByteReader r{w.bytes()};
    auto back = deserializeSignal(r);
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, s);
    EXPECT_TRUE(r.atEnd());
  }
}

TEST(SignalSerialization, GarbageFailsCleanly) {
  std::vector<std::uint8_t> garbage{0xff, 0x00, 0x12};
  ByteReader r{garbage};
  EXPECT_EQ(deserializeSignal(r), std::nullopt);
}

TEST(SignalSerialization, TruncatedOpenFails) {
  ByteWriter w;
  serialize(Signal{OpenSignal{Medium::audio, desc(1)}}, w);
  auto bytes = w.bytes();
  bytes.resize(bytes.size() / 2);
  ByteReader r{bytes.data(), bytes.size()};
  EXPECT_EQ(deserializeSignal(r), std::nullopt);
}

TEST(SignalHelpers, KindAndDescriptor) {
  Signal s = OpenSignal{Medium::video, desc(7)};
  EXPECT_EQ(kindOf(s), SignalKind::open);
  ASSERT_NE(descriptorOf(s), nullptr);
  EXPECT_EQ(descriptorOf(s)->id, DescriptorId{7});
  EXPECT_EQ(descriptorOf(Signal{CloseSignal{}}), nullptr);
}

// ----------------------------------------------------------- slot endpoint

class SlotFsm : public ::testing::Test {
 protected:
  SlotEndpoint initiator_{SlotId{1}, /*channel_initiator=*/true};
  SlotEndpoint acceptor_{SlotId{2}, /*channel_initiator=*/false};
};

TEST_F(SlotFsm, OpenHappyPathInitiatorSide) {
  EXPECT_EQ(initiator_.state(), ProtocolState::closed);
  (void)initiator_.sendOpen(Medium::audio, desc(1));
  EXPECT_EQ(initiator_.state(), ProtocolState::opening);
  EXPECT_EQ(initiator_.lastDescriptorSent(), DescriptorId{1});

  auto r = initiator_.deliver(OackSignal{desc(2)});
  EXPECT_EQ(r.event, SlotEvent::oackReceived);
  EXPECT_FALSE(r.autoReply.has_value());
  EXPECT_EQ(initiator_.state(), ProtocolState::flowing);
  ASSERT_TRUE(initiator_.remoteDescriptor().has_value());
  EXPECT_EQ(initiator_.remoteDescriptor()->id, DescriptorId{2});
  EXPECT_EQ(initiator_.medium(), Medium::audio);
}

TEST_F(SlotFsm, OpenHappyPathAcceptorSide) {
  auto r = acceptor_.deliver(OpenSignal{Medium::audio, desc(1)});
  EXPECT_EQ(r.event, SlotEvent::openReceived);
  EXPECT_EQ(acceptor_.state(), ProtocolState::opened);
  (void)acceptor_.sendOack(desc(2));
  EXPECT_EQ(acceptor_.state(), ProtocolState::flowing);
  (void)acceptor_.sendSelect(sel(1));
  ASSERT_TRUE(acceptor_.lastSelectorSent().has_value());
  EXPECT_EQ(acceptor_.lastSelectorSent()->answersDescriptor, DescriptorId{1});
}

TEST_F(SlotFsm, RejectWithClose) {
  (void)initiator_.sendOpen(Medium::audio, desc(1));
  auto r = initiator_.deliver(CloseSignal{});
  EXPECT_EQ(r.event, SlotEvent::closedByPeer);
  ASSERT_TRUE(r.autoReply.has_value());
  EXPECT_EQ(kindOf(*r.autoReply), SignalKind::closeack);
  EXPECT_EQ(initiator_.state(), ProtocolState::closed);
  EXPECT_FALSE(initiator_.medium().has_value());
}

TEST_F(SlotFsm, CloseHandshakeFromFlowing) {
  (void)initiator_.sendOpen(Medium::audio, desc(1));
  (void)initiator_.deliver(OackSignal{desc(2)});
  (void)initiator_.sendClose();
  EXPECT_EQ(initiator_.state(), ProtocolState::closing);
  auto r = initiator_.deliver(CloseAckSignal{});
  EXPECT_EQ(r.event, SlotEvent::fullyClosed);
  EXPECT_EQ(initiator_.state(), ProtocolState::closed);
}

TEST_F(SlotFsm, CloseCloseCross) {
  // Both ends close simultaneously: each acknowledges the peer's close and
  // still completes on its own closeack.
  (void)initiator_.sendOpen(Medium::audio, desc(1));
  (void)initiator_.deliver(OackSignal{desc(2)});
  (void)initiator_.sendClose();
  auto r1 = initiator_.deliver(CloseSignal{});
  EXPECT_EQ(r1.event, SlotEvent::ignored);
  ASSERT_TRUE(r1.autoReply.has_value());
  EXPECT_EQ(kindOf(*r1.autoReply), SignalKind::closeack);
  EXPECT_EQ(initiator_.state(), ProtocolState::closing);
  auto r2 = initiator_.deliver(CloseAckSignal{});
  EXPECT_EQ(r2.event, SlotEvent::fullyClosed);
  EXPECT_EQ(initiator_.state(), ProtocolState::closed);
}

TEST_F(SlotFsm, OpenOpenRaceInitiatorWins) {
  // The channel initiator ignores the incoming open and stays opening.
  (void)initiator_.sendOpen(Medium::audio, desc(1));
  auto r = initiator_.deliver(OpenSignal{Medium::audio, desc(2)});
  EXPECT_EQ(r.event, SlotEvent::ignored);
  EXPECT_EQ(initiator_.state(), ProtocolState::opening);
}

TEST_F(SlotFsm, OpenOpenRaceNonInitiatorBacksOff) {
  // The non-initiator backs off and becomes the acceptor (footnote 6).
  (void)acceptor_.sendOpen(Medium::audio, desc(1));
  auto r = acceptor_.deliver(OpenSignal{Medium::audio, desc(2)});
  EXPECT_EQ(r.event, SlotEvent::becameAcceptor);
  EXPECT_EQ(acceptor_.state(), ProtocolState::opened);
  ASSERT_TRUE(acceptor_.remoteDescriptor().has_value());
  EXPECT_EQ(acceptor_.remoteDescriptor()->id, DescriptorId{2});
}

TEST_F(SlotFsm, DescribeUpdatesRemoteDescriptor) {
  (void)initiator_.sendOpen(Medium::audio, desc(1));
  (void)initiator_.deliver(OackSignal{desc(2)});
  auto r = initiator_.deliver(DescribeSignal{desc(3)});
  EXPECT_EQ(r.event, SlotEvent::descriptorReceived);
  EXPECT_EQ(initiator_.remoteDescriptor()->id, DescriptorId{3});
}

TEST_F(SlotFsm, SelectRecorded) {
  (void)initiator_.sendOpen(Medium::audio, desc(1));
  (void)initiator_.deliver(OackSignal{desc(2)});
  auto r = initiator_.deliver(SelectSignal{sel(1)});
  EXPECT_EQ(r.event, SlotEvent::selectorReceived);
  ASSERT_TRUE(initiator_.lastSelectorReceived().has_value());
  EXPECT_EQ(initiator_.lastSelectorReceived()->answersDescriptor, DescriptorId{1});
}

TEST_F(SlotFsm, ObsoleteSignalsIgnoredWhileClosing) {
  // After we send close, late oack/describe/select must be dropped.
  (void)initiator_.sendOpen(Medium::audio, desc(1));
  (void)initiator_.sendClose();
  EXPECT_EQ(initiator_.deliver(OackSignal{desc(2)}).event, SlotEvent::ignored);
  EXPECT_EQ(initiator_.deliver(DescribeSignal{desc(3)}).event, SlotEvent::ignored);
  EXPECT_EQ(initiator_.deliver(SelectSignal{sel(1)}).event, SlotEvent::ignored);
  EXPECT_EQ(initiator_.state(), ProtocolState::closing);
}

TEST_F(SlotFsm, LateCloseWhileClosedAcked) {
  auto r = initiator_.deliver(CloseSignal{});
  EXPECT_EQ(r.event, SlotEvent::ignored);
  ASSERT_TRUE(r.autoReply.has_value());
  EXPECT_EQ(kindOf(*r.autoReply), SignalKind::closeack);
  EXPECT_EQ(initiator_.state(), ProtocolState::closed);
}

TEST_F(SlotFsm, StrayCloseackIgnored) {
  EXPECT_EQ(initiator_.deliver(CloseAckSignal{}).event, SlotEvent::ignored);
  EXPECT_EQ(initiator_.state(), ProtocolState::closed);
}

TEST_F(SlotFsm, IllegalSendsThrow) {
  EXPECT_THROW((void)initiator_.sendOack(desc(1)), std::logic_error);
  EXPECT_THROW((void)initiator_.sendDescribe(desc(1)), std::logic_error);
  EXPECT_THROW((void)initiator_.sendSelect(sel(1)), std::logic_error);
  EXPECT_THROW((void)initiator_.sendClose(), std::logic_error);
  (void)initiator_.sendOpen(Medium::audio, desc(1));
  EXPECT_THROW((void)initiator_.sendOpen(Medium::audio, desc(2)), std::logic_error);
}

TEST_F(SlotFsm, StateAfterFullCycleIsReusable) {
  // closed -> opening -> flowing -> closing -> closed -> opening again.
  (void)initiator_.sendOpen(Medium::audio, desc(1));
  (void)initiator_.deliver(OackSignal{desc(2)});
  (void)initiator_.sendClose();
  (void)initiator_.deliver(CloseAckSignal{});
  EXPECT_EQ(initiator_.state(), ProtocolState::closed);
  (void)initiator_.sendOpen(Medium::video, desc(3));
  EXPECT_EQ(initiator_.state(), ProtocolState::opening);
  EXPECT_EQ(initiator_.medium(), Medium::video);
}

TEST_F(SlotFsm, LiveDeadClassification) {
  EXPECT_TRUE(isDead(ProtocolState::closed));
  EXPECT_TRUE(isDead(ProtocolState::closing));
  EXPECT_TRUE(isLive(ProtocolState::opening));
  EXPECT_TRUE(isLive(ProtocolState::opened));
  EXPECT_TRUE(isLive(ProtocolState::flowing));
}

TEST_F(SlotFsm, CanonicalizeDistinguishesStates) {
  ByteWriter w1;
  initiator_.canonicalize(w1);
  (void)initiator_.sendOpen(Medium::audio, desc(1));
  ByteWriter w2;
  initiator_.canonicalize(w2);
  EXPECT_NE(fnv1a(w1.bytes()), fnv1a(w2.bytes()));
}

// Parameterized sweep: delivering any signal in any state never crashes and
// leaves the endpoint in a valid state (totality of the FSM).
class SlotFsmTotality
    : public ::testing::TestWithParam<std::tuple<int, SignalKind>> {};

TEST_P(SlotFsmTotality, DeliveryIsTotal) {
  auto [state_index, kind] = GetParam();
  SlotEndpoint slot{SlotId{1}, true};
  // Drive the slot into the target state.
  switch (static_cast<ProtocolState>(state_index)) {
    case ProtocolState::closed: break;
    case ProtocolState::opening:
      (void)slot.sendOpen(Medium::audio, desc(1));
      break;
    case ProtocolState::opened:
      (void)slot.deliver(OpenSignal{Medium::audio, desc(9)});
      break;
    case ProtocolState::flowing:
      (void)slot.sendOpen(Medium::audio, desc(1));
      (void)slot.deliver(OackSignal{desc(9)});
      break;
    case ProtocolState::closing:
      (void)slot.sendOpen(Medium::audio, desc(1));
      (void)slot.sendClose();
      break;
  }
  Signal s;
  switch (kind) {
    case SignalKind::open: s = OpenSignal{Medium::audio, desc(21)}; break;
    case SignalKind::oack: s = OackSignal{desc(22)}; break;
    case SignalKind::close: s = CloseSignal{}; break;
    case SignalKind::closeack: s = CloseAckSignal{}; break;
    case SignalKind::describe: s = DescribeSignal{desc(23)}; break;
    case SignalKind::select: s = SelectSignal{sel(23)}; break;
  }
  EXPECT_NO_THROW((void)slot.deliver(s));
  // State remains one of the five valid states (trivially true by type, but
  // exercise accessors for sanitizer coverage).
  (void)slot.state();
  (void)slot.remoteDescriptor();
  (void)slot.medium();
}

INSTANTIATE_TEST_SUITE_P(
    AllStateSignalPairs, SlotFsmTotality,
    ::testing::Combine(::testing::Range(0, 5),
                       ::testing::Values(SignalKind::open, SignalKind::oack,
                                         SignalKind::close, SignalKind::closeack,
                                         SignalKind::describe, SignalKind::select)));

}  // namespace
}  // namespace cmc
