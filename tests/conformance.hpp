// Reusable wire-level protocol conformance oracle (Figs. 5 and 10).
//
// The Fig. 10 scenario test originally hard-coded its legality checks; this
// header promotes them into an oracle any suite can run over any observed
// signal sequence — the hand-pumped Fig. 10 wires, or per-tunnel traces
// captured from the sharded load runtime. The oracle checks the protocol's
// kind-level rules, the ones visible without payload access:
//
//   * open  only leaves a closed sender (Fig. 5: closed → opening);
//   * oack  must answer an outstanding open from the peer (and moves both
//           ends toward flowing);
//   * describe only flows on an established (flowing) sender;
//   * select must answer a descriptor the peer has actually sent (open,
//           oack and describe all carry one; a re-select answering the same
//           descriptor is legal, Fig. 10's codec change);
//   * close is legal from any state (teardown, hold answer, or open
//           refusal) and cancels the peer's outstanding open;
//   * closeack must answer an outstanding close from the peer.
//
// Every rule is of the form "X requires an earlier Y", so any prefix of a
// legal run is legal: traces truncated by a channel teardown (the load
// runtime's hang-ups) never produce false violations. finish(true) adds the
// end-of-run quiescence obligations for complete runs: no close left
// unacknowledged, no open left unanswered.
//
// The oracle is deliberately payload-blind; descriptor/selector pairing by
// value stays in fig10_conformance_test.cpp, which has the real objects.
#pragma once

#include <cstddef>
#include <map>
#include <string>
#include <string_view>
#include <tuple>
#include <utility>
#include <vector>

#include "obs/trace.hpp"

namespace cmc::conformance {

struct Violation {
  std::size_t index;  // 0-based position in the fed sequence
  std::string what;
};

class TunnelOracle {
 public:
  // Feed the next signal kind observed on the tunnel ("open", "oack",
  // "close", "closeack", "describe", "select"); `from_left` names the
  // sending side (which side is "left" is arbitrary but must be held
  // consistent for the whole sequence).
  void feed(bool from_left, std::string_view kind) {
    const int s = from_left ? 0 : 1;
    const int p = 1 - s;
    if (kind == "open") {
      if (state_[s] != Side::closed) {
        flag("open while not closed");
      }
      state_[s] = Side::opening;
      ++descriptors_[s];  // open carries the initial descriptor
    } else if (kind == "oack") {
      if (state_[p] != Side::opening) {
        flag("oack without an outstanding open");
      }
      state_[p] = Side::flowing;
      state_[s] = Side::flowing;
      ++descriptors_[s];  // oack carries the answering side's descriptor
    } else if (kind == "describe") {
      if (state_[s] != Side::flowing) {
        flag("describe on a non-flowing sender");
      }
      ++descriptors_[s];
    } else if (kind == "select") {
      if (descriptors_[p] == 0) {
        flag("select with no descriptor to answer");
      }
    } else if (kind == "close") {
      // Legal from any state; an outstanding open from the peer is hereby
      // refused (Section V's close/open interaction).
      if (state_[p] == Side::opening) state_[p] = Side::closed;
      state_[s] = Side::closed;
      ++unacked_close_[s];
    } else if (kind == "closeack") {
      if (unacked_close_[p] == 0) {
        flag("closeack without an outstanding close");
      } else {
        --unacked_close_[p];
      }
      state_[s] = Side::closed;
    } else {
      flag("unknown signal kind '" + std::string(kind) + "'");
    }
    ++fed_;
  }

  // End-of-sequence obligations. With `expect_quiescent` the run must have
  // settled completely (Fig. 10 runs to closed/closed); without it only the
  // prefix-closed rules above apply (truncated load traces).
  void finish(bool expect_quiescent) {
    if (!expect_quiescent) return;
    if (unacked_close_[0] + unacked_close_[1] != 0) {
      flag("close left unacknowledged at end of run");
    }
    if (state_[0] == Side::opening || state_[1] == Side::opening) {
      flag("open left unanswered at end of run");
    }
  }

  [[nodiscard]] bool ok() const noexcept { return violations_.empty(); }
  [[nodiscard]] const std::vector<Violation>& violations() const noexcept {
    return violations_;
  }
  [[nodiscard]] std::size_t signalsFed() const noexcept { return fed_; }

 private:
  enum class Side { closed, opening, flowing };

  void flag(std::string what) { violations_.push_back({fed_, std::move(what)}); }

  Side state_[2] = {Side::closed, Side::closed};
  std::size_t descriptors_[2] = {0, 0};
  std::size_t unacked_close_[2] = {0, 0};
  std::size_t fed_ = 0;
  std::vector<Violation> violations_;
};

// Run the oracle over every tunnel found in a captured trace (signalRecv
// events: actor=receiver, aux=sender, v0=channel id, v1=tunnel index).
// Channel ids are unique within one simulator, so (v0, v1) identifies a
// tunnel within one shard's trace; events appear in delivery order. The
// lexicographically smaller box name plays "left". Returns violations
// prefixed with the tunnel's box pair. Traces end wherever the capture
// ends, so only the prefix-closed rules are checked (finish(false)).
inline std::vector<Violation> checkTrace(
    const std::vector<obs::TraceEvent>& events) {
  struct Tunnel {
    std::string left;
    TunnelOracle oracle;
    std::string pair;
  };
  std::map<std::pair<std::int64_t, std::int64_t>, Tunnel> tunnels;
  for (const obs::TraceEvent& ev : events) {
    if (ev.kind != obs::EventKind::signalRecv) continue;
    auto& tunnel = tunnels[{ev.v0, ev.v1}];
    if (tunnel.pair.empty()) {
      tunnel.left = ev.aux < ev.actor ? ev.aux : ev.actor;
      tunnel.pair = (ev.aux < ev.actor ? ev.aux + "<->" + ev.actor
                                       : ev.actor + "<->" + ev.aux);
    }
    tunnel.oracle.feed(ev.aux == tunnel.left, ev.name);
  }
  std::vector<Violation> out;
  for (auto& [key, tunnel] : tunnels) {
    tunnel.oracle.finish(/*expect_quiescent=*/false);
    for (const Violation& v : tunnel.oracle.violations()) {
      out.push_back({v.index, tunnel.pair + ": " + v.what});
    }
  }
  return out;
}

}  // namespace cmc::conformance
