// End-to-end tests for collaborative television (paper Fig. 8): a family TV
// (A) and a daughter's laptop (C) share one movie through collaboration
// boxes; a French-speaking friend (B) gets a separate audio stream; the
// daughter later leaves and fast-forwards her own view.
#include <gtest/gtest.h>

#include "apps/collab_tv.hpp"
#include "endpoints/av_device.hpp"
#include "endpoints/movie_server.hpp"
#include "sim/simulator.hpp"

namespace cmc {
namespace {

using namespace literals;

class CollabTvScenario : public ::testing::Test {
 protected:
  CollabTvScenario()
      : sim_(TimingModel::paperDefaults(), 31),
        tv_(sim_.addBox<AvDeviceBox>(
            "TV", sim_.mediaNetwork(), sim_.loop(),
            MediaAddress::parse("10.3.0.1", 5000),
            std::vector<AvDeviceBox::StreamSpec>{
                {Medium::video, {Codec::mpeg2, Codec::h263}},
                {Medium::audio, {Codec::g711u}}})),
        headphones_(sim_.addBox<AvDeviceBox>(
            "phones", sim_.mediaNetwork(), sim_.loop(),
            MediaAddress::parse("10.3.0.2", 5000),
            std::vector<AvDeviceBox::StreamSpec>{{Medium::audio, {Codec::g726}}})),
        laptop_(sim_.addBox<AvDeviceBox>(
            "laptop", sim_.mediaNetwork(), sim_.loop(),
            MediaAddress::parse("10.3.0.3", 5000),
            std::vector<AvDeviceBox::StreamSpec>{
                {Medium::video, {Codec::h263}},  // lower quality than the TV
                {Medium::audio, {Codec::g711u, Codec::g726}}})),
        server_(sim_.addBox<MovieServerBox>("movies", sim_.mediaNetwork(),
                                            sim_.loop(),
                                            MediaAddress::parse("10.3.0.100", 7000))),
        collab_a_(sim_.addBox<CollabTvBox>("collabA", "movies")),
        collab_c_(sim_.addBox<CollabTvBox>("collabC", "movies")) {
    // Static configuration: devices hang off their collaboration boxes.
    tv_ch_ = sim_.connect("collabA", "TV", 2);        // video + English audio
    phones_ch_ = sim_.connect("collabA", "phones", 1);  // French audio
    laptop_ch_ = sim_.connect("collabC", "laptop", 2);
    peer_ch_ = sim_.connect("collabC", "collabA", 2);   // C's streams via A
  }

  // Controller A starts the movie with 5 streams (paper: video+audio for
  // two devices plus one French audio) and routes them.
  void startSharedMovie() {
    sim_.inject("collabA", [this](Box& b) {
      static_cast<CollabTvBox&>(b).startMovie("big-movie", 5);
    });
    sim_.runFor(500_ms);
    sim_.inject("collabA", [this](Box& b) {
      auto& collab = static_cast<CollabTvBox&>(b);
      collab.routeStream(0, tv_ch_, 0);      // video -> TV
      collab.routeStream(1, tv_ch_, 1);      // English audio -> TV
      collab.routeStream(2, phones_ch_, 0);  // French audio -> headphones
      collab.routeStream(3, peer_ch_, 0);    // video -> collabC
      collab.routeStream(4, peer_ch_, 1);    // audio -> collabC
    });
    sim_.runFor(500_ms);
    // collabC patches its device through to the shared path.
    sim_.inject("collabC", [this](Box& b) {
      auto& collab = static_cast<CollabTvBox&>(b);
      const auto peer_slots = collab.slotsOf(peer_ch_);
      const auto dev_slots = collab.slotsOf(laptop_ch_);
      collab.linkSlots(peer_slots[0], dev_slots[0]);
      collab.linkSlots(peer_slots[1], dev_slots[1]);
    });
    sim_.runFor(500_ms);
    // The devices pull their streams (media endpoints originate opens; the
    // flowlink chains extend them to the movie server).
    sim_.inject("TV", [](Box& b) {
      auto& device = static_cast<AvDeviceBox&>(b);
      device.openStream(0);
      device.openStream(1);
    });
    sim_.inject("phones", [](Box& b) {
      static_cast<AvDeviceBox&>(b).openStream(0);
    });
    sim_.inject("laptop", [](Box& b) {
      auto& device = static_cast<AvDeviceBox&>(b);
      device.openStream(0);
      device.openStream(1);
    });
    sim_.runFor(2_s);
  }

  [[nodiscard]] bool deviceStreamsLive(const AvDeviceBox& device,
                                       std::size_t streams) const {
    for (std::size_t i = 0; i < streams; ++i) {
      if (device.stream(i).packetsReceived() == 0) return false;
    }
    return true;
  }

  Simulator sim_;
  AvDeviceBox& tv_;
  AvDeviceBox& headphones_;
  AvDeviceBox& laptop_;
  MovieServerBox& server_;
  CollabTvBox& collab_a_;
  CollabTvBox& collab_c_;
  ChannelId tv_ch_, phones_ch_, laptop_ch_, peer_ch_;
};

TEST_F(CollabTvScenario, AllFiveStreamsReachTheirDevices) {
  startSharedMovie();
  EXPECT_TRUE(deviceStreamsLive(tv_, 2));
  EXPECT_TRUE(deviceStreamsLive(headphones_, 1));
  EXPECT_TRUE(deviceStreamsLive(laptop_, 2));
}

TEST_F(CollabTvScenario, CodecChoiceIsPerReceiver) {
  startSharedMovie();
  // The TV negotiated MPEG-2 (its best), the laptop H.263, the headphones
  // G.726 — all unilaterally from each receiver's own descriptor. Each
  // device receives a healthy stream; a handful of packets may have been
  // clipped at startup (media outruns the select signal: the relaxed
  // synchronization the paper accepts in footnote 5).
  EXPECT_GT(tv_.stream(0).packetsReceived(), 20u);
  EXPECT_LE(tv_.stream(0).packetsClipped(), 10u);
  EXPECT_GT(laptop_.stream(0).packetsReceived(), 20u);
  // The laptop's selects cross two flowlink boxes, so more packets outrun
  // the signaling than on the TV's one-box path.
  EXPECT_LE(laptop_.stream(0).packetsClipped(), 20u);
  EXPECT_GT(headphones_.stream(0).packetsReceived(), 20u);
}

TEST_F(CollabTvScenario, PauseAffectsAllStreams) {
  startSharedMovie();
  sim_.inject("collabA", [](Box& b) { static_cast<CollabTvBox&>(b).pause(); });
  sim_.runFor(500_ms);
  tv_.stream(0).resetStats();
  laptop_.stream(0).resetStats();
  headphones_.stream(0).resetStats();
  sim_.runFor(1_s);
  EXPECT_EQ(tv_.stream(0).packetsReceived(), 0u);
  EXPECT_EQ(laptop_.stream(0).packetsReceived(), 0u);
  EXPECT_EQ(headphones_.stream(0).packetsReceived(), 0u);
  // Position frozen.
  const double p1 = server_.positionOf(collab_a_.movieChannel());
  sim_.runFor(1_s);
  EXPECT_DOUBLE_EQ(server_.positionOf(collab_a_.movieChannel()), p1);
  // Play resumes everything.
  sim_.inject("collabA", [](Box& b) { static_cast<CollabTvBox&>(b).play(); });
  sim_.runFor(1_s);
  EXPECT_GT(tv_.stream(0).packetsReceived(), 0u);
  EXPECT_GT(server_.positionOf(collab_a_.movieChannel()), p1);
}

TEST_F(CollabTvScenario, PositionAdvancesWhilePlaying) {
  startSharedMovie();
  const double p1 = server_.positionOf(collab_a_.movieChannel());
  sim_.runFor(2_s);
  const double p2 = server_.positionOf(collab_a_.movieChannel());
  EXPECT_NEAR(p2 - p1, 2.0, 0.01);
}

TEST_F(CollabTvScenario, DaughterLeavesAndFastForwards) {
  startSharedMovie();
  const double shared_pos = server_.positionOf(collab_a_.movieChannel());
  // The daughter leaves the collaboration and jumps to the end.
  sim_.inject("collabC", [this](Box& b) {
    static_cast<CollabTvBox&>(b).leaveAndSplit("collabA", "big-movie", 2,
                                               5000.0);
  });
  // Once her own movie channel is up, route her device onto it.
  sim_.runFor(500_ms);
  sim_.inject("collabC", [this](Box& b) {
    auto& collab = static_cast<CollabTvBox&>(b);
    collab.routeStream(0, laptop_ch_, 0);
    collab.routeStream(1, laptop_ch_, 1);
  });
  sim_.runFor(2_s);
  // Her own session at her own time pointer...
  ASSERT_TRUE(collab_c_.movieChannel().valid());
  EXPECT_GT(server_.positionOf(collab_c_.movieChannel()), 4999.0);
  // ...while the family view is undisturbed at its own pointer.
  EXPECT_LT(server_.positionOf(collab_a_.movieChannel()), shared_pos + 10.0);
  laptop_.stream(0).resetStats();
  tv_.stream(0).resetStats();
  sim_.runFor(1_s);
  EXPECT_GT(laptop_.stream(0).packetsReceived(), 0u);  // her new streams
  EXPECT_GT(tv_.stream(0).packetsReceived(), 0u);      // family still watching
}

}  // namespace
}  // namespace cmc
