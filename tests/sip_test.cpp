// Tests for the SIP baseline (paper Section IX-B): offer/answer, 3pcc
// relink, glare failure + retry, and the latency comparison against the
// compositional protocol (Fig. 13 vs Fig. 14).
#include <gtest/gtest.h>

#include "sip/agent.hpp"
#include "sip/b2bua.hpp"

namespace cmc::sip {
namespace {

using namespace cmc::literals;

class SipFixture : public ::testing::Test {
 protected:
  SipFixture()
      : net_(loop_, TimingModel::paperDefaults(), 5),
        a_("A", net_, MediaAddress::parse("10.0.0.1", 5000),
           {Codec::g711u, Codec::g726}),
        c_("C", net_, MediaAddress::parse("10.0.0.3", 5000),
           {Codec::g711u, Codec::g726}),
        pbx_("PBX", net_),
        pc_("PC", net_) {
    dialog_a_ = net_.createDialog("A", "PBX");      // A's side
    dialog_mid_ = net_.createDialog("PBX", "PC");   // server-to-server
    dialog_c_ = net_.createDialog("PC", "C");       // C's side
    pbx_.linkDialogs(dialog_a_, dialog_mid_);
    pc_.linkDialogs(dialog_mid_, dialog_c_);
  }

  EventLoop loop_;
  SipNetwork net_;
  SipUa a_;
  SipUa c_;
  SipB2bua pbx_;
  SipB2bua pc_;
  std::uint64_t dialog_a_ = 0, dialog_mid_ = 0, dialog_c_ = 0;
};

TEST_F(SipFixture, DirectReinviteCompletesOfferAnswer) {
  // UA-to-UA re-INVITE through the forwarding B2BUAs.
  a_.reinvite(dialog_a_);
  loop_.runUntilIdle();
  ASSERT_TRUE(a_.mediaReadyAt().has_value());
  ASSERT_TRUE(c_.mediaReadyAt().has_value());
  EXPECT_EQ(a_.glaresSeen(), 0);
}

TEST_F(SipFixture, RaceFree3pccRelink) {
  // Only PC relinks: the paper's common case (no contention).
  pc_.relink(dialog_c_, dialog_mid_);
  loop_.runUntilIdle();
  EXPECT_TRUE(pc_.relinkDone());
  ASSERT_TRUE(a_.mediaReadyAt().has_value());
  ASSERT_TRUE(c_.mediaReadyAt().has_value());
  EXPECT_EQ(pc_.glaresSeen(), 0);
  EXPECT_EQ(pc_.retries(), 0);
  // Paper: the race-free 3pcc costs about 7n + 7c = 378 ms; allow the
  // accounting to differ by a couple of hops either way.
  const double last = std::max(a_.mediaReadyAt()->millis(),
                               c_.mediaReadyAt()->millis());
  EXPECT_GT(last, 250.0);
  EXPECT_LT(last, 550.0);
}

TEST_F(SipFixture, ConcurrentRelinksGlareAndRecover) {
  // Fig. 14: both servers relink the shared dialog at once. The INVITEs
  // meet in the middle; both fail with 491; dummy answers close the
  // solicited sides; a randomized backoff precedes the successful retry.
  pbx_.relink(dialog_a_, dialog_mid_);
  pc_.relink(dialog_c_, dialog_mid_);
  loop_.runUntilIdle();
  EXPECT_GE(pbx_.glaresSeen() + pc_.glaresSeen(), 1);
  EXPECT_GE(pbx_.retries() + pc_.retries(), 1);
  EXPECT_TRUE(pbx_.relinkDone());
  EXPECT_TRUE(pc_.relinkDone());
  ASSERT_TRUE(a_.mediaReadyAt().has_value());
  ASSERT_TRUE(c_.mediaReadyAt().has_value());
  // Paper: 10n + 11c + d with E[d] = 3 s gives ~3.5 s; the backoff
  // dominates. Check the order of magnitude (both retried here, so the
  // makespan includes the longer backoff).
  const double last = std::max(a_.mediaReadyAt()->millis(),
                               c_.mediaReadyAt()->millis());
  EXPECT_GT(last, 2000.0);
  EXPECT_LT(last, 10'000.0);
}

TEST_F(SipFixture, GlareDummyAnswerDoesNotEnableMedia) {
  pbx_.relink(dialog_a_, dialog_mid_);
  pc_.relink(dialog_c_, dialog_mid_);
  // Run only past the glare resolution, before any retry completes.
  loop_.runUntil(SimTime{} + 1500_ms);
  // The dummy answers closed the solicited transactions but must not have
  // made media "ready" on a noMedia answer alone. (Media readiness needs a
  // real codec.)
  if (a_.mediaReadyAt()) {
    EXPECT_GT(a_.mediaReadyAt()->millis(), 1500.0);
  }
  SUCCEED();
}

TEST_F(SipFixture, UaGlareOnSingleDialog) {
  // Two UAs re-INVITE each other directly on one dialog.
  EventLoop loop;
  SipNetwork net(loop, TimingModel::paperDefaults(), 9);
  SipUa x("X", net, MediaAddress::parse("10.0.0.7", 5000), {Codec::g711u});
  SipUa y("Y", net, MediaAddress::parse("10.0.0.8", 5000), {Codec::g711u});
  const auto dialog = net.createDialog("X", "Y");
  x.reinvite(dialog);
  y.reinvite(dialog);
  loop.runUntilIdle();
  EXPECT_GE(x.glaresSeen() + y.glaresSeen(), 2);
  // Both eventually complete after backoff.
  EXPECT_TRUE(x.mediaReadyAt().has_value());
  EXPECT_TRUE(y.mediaReadyAt().has_value());
}

TEST_F(SipFixture, AnswerIsSubsetOfOffer) {
  // C only speaks g726; A offers both; the negotiated answer must be the
  // intersection.
  EventLoop loop;
  SipNetwork net(loop, TimingModel::paperDefaults(), 13);
  SipUa wide("wide", net, MediaAddress::parse("10.0.0.7", 5000),
             {Codec::g711u, Codec::g726});
  SipUa narrow("narrow", net, MediaAddress::parse("10.0.0.8", 5000),
               {Codec::g726});
  const auto dialog = net.createDialog("wide", "narrow");
  wide.reinvite(dialog);
  loop.runUntilIdle();
  EXPECT_TRUE(wide.mediaReadyAt().has_value());
  EXPECT_TRUE(narrow.mediaReadyAt().has_value());
}

TEST_F(SipFixture, CompositionalProtocolIsFasterSameTimingModel) {
  // The headline comparison (E6): run the SIP race-free 3pcc and measure;
  // the compositional protocol's equivalent (Fig. 13) costs 2n + 3c =
  // 128 ms, under one third of SIP's ~378 ms.
  pc_.relink(dialog_c_, dialog_mid_);
  loop_.runUntilIdle();
  const double sip_ms = std::max(a_.mediaReadyAt()->millis(),
                                 c_.mediaReadyAt()->millis());
  const double ours_ms = 2 * 34 + 3 * 20;  // analytic, validated in sim_test
  EXPECT_GT(sip_ms, 2.5 * ours_ms);
}

}  // namespace
}  // namespace cmc::sip
