// Unit tests for the media plane: packet routing, endpoint ticking,
// clipping accounting, audibility windows, and the conference bridge's mix
// matrix — all independent of signaling.
#include <gtest/gtest.h>

#include "media/bridge.hpp"
#include "media/endpoint.hpp"
#include "media/network.hpp"

namespace cmc {
namespace {

using namespace literals;

class MediaFixture : public ::testing::Test {
 protected:
  MediaFixture() : net_(loop_) {}

  EventLoop loop_;
  MediaNetwork net_;
};

TEST_F(MediaFixture, PacketsToNobodyAreDropped) {
  MediaPacket packet;
  packet.to = MediaAddress::parse("10.0.0.99", 1);
  packet.codec = Codec::g711u;
  net_.send(packet);
  loop_.runUntilIdle();
  EXPECT_EQ(net_.packetsDropped(), 1u);
  EXPECT_EQ(net_.packetsDelivered(), 0u);
}

TEST_F(MediaFixture, EndpointSendsAtPacketInterval) {
  MediaEndpoint tx(EndpointId{1}, MediaAddress::parse("10.0.0.1", 1), net_, loop_);
  MediaEndpoint rx(EndpointId{2}, MediaAddress::parse("10.0.0.2", 1), net_, loop_);
  rx.setListening({Codec::g711u});
  tx.setSending(MediaEndpoint::SendState{rx.address(), Codec::g711u});
  loop_.runUntil(SimTime{} + 1_s);
  // 20 ms framing -> ~50 packets per second.
  EXPECT_NEAR(static_cast<double>(tx.packetsSent()), 50.0, 3.0);
  EXPECT_NEAR(static_cast<double>(rx.packetsReceived()),
              static_cast<double>(tx.packetsSent()), 2.0);
  EXPECT_TRUE(rx.hears(EndpointId{1}));
}

TEST_F(MediaFixture, CodecMismatchIsClipped) {
  MediaEndpoint tx(EndpointId{1}, MediaAddress::parse("10.0.0.1", 1), net_, loop_);
  MediaEndpoint rx(EndpointId{2}, MediaAddress::parse("10.0.0.2", 1), net_, loop_);
  rx.setListening({Codec::g726});  // wrong codec
  tx.setSending(MediaEndpoint::SendState{rx.address(), Codec::g711u});
  loop_.runUntil(SimTime{} + 500_ms);
  EXPECT_EQ(rx.packetsReceived(), 0u);
  EXPECT_GT(rx.packetsClipped(), 0u);
  EXPECT_FALSE(rx.hears(EndpointId{1}));
}

TEST_F(MediaFixture, StopSendingStopsTicker) {
  MediaEndpoint tx(EndpointId{1}, MediaAddress::parse("10.0.0.1", 1), net_, loop_);
  MediaEndpoint rx(EndpointId{2}, MediaAddress::parse("10.0.0.2", 1), net_, loop_);
  rx.setListening({Codec::g711u});
  tx.setSending(MediaEndpoint::SendState{rx.address(), Codec::g711u});
  loop_.runUntil(SimTime{} + 200_ms);
  tx.setSending(std::nullopt);
  const auto sent = tx.packetsSent();
  loop_.runUntil(SimTime{} + 1_s);
  EXPECT_EQ(tx.packetsSent(), sent);
  EXPECT_FALSE(tx.sendingNow());
}

TEST_F(MediaFixture, NoMediaCodecNeverTicks) {
  MediaEndpoint tx(EndpointId{1}, MediaAddress::parse("10.0.0.1", 1), net_, loop_);
  tx.setSending(MediaEndpoint::SendState{MediaAddress::parse("10.0.0.2", 1),
                                         Codec::noMedia});
  loop_.runUntil(SimTime{} + 500_ms);
  EXPECT_EQ(tx.packetsSent(), 0u);
  EXPECT_FALSE(tx.sendingNow());
}

TEST_F(MediaFixture, AudibilityWindowExpires) {
  MediaEndpoint tx(EndpointId{1}, MediaAddress::parse("10.0.0.1", 1), net_, loop_);
  MediaEndpoint rx(EndpointId{2}, MediaAddress::parse("10.0.0.2", 1), net_, loop_);
  rx.setListening({Codec::g711u});
  tx.setSending(MediaEndpoint::SendState{rx.address(), Codec::g711u});
  loop_.runUntil(SimTime{} + 200_ms);
  tx.setSending(std::nullopt);
  EXPECT_TRUE(rx.hears(EndpointId{1}));
  loop_.runUntil(SimTime{} + 2_s);  // silence for >window
  EXPECT_FALSE(rx.hears(EndpointId{1}));
  EXPECT_TRUE(rx.audibleSources().empty());
}

TEST_F(MediaFixture, ResetStatsClearsEverything) {
  MediaEndpoint tx(EndpointId{1}, MediaAddress::parse("10.0.0.1", 1), net_, loop_);
  MediaEndpoint rx(EndpointId{2}, MediaAddress::parse("10.0.0.2", 1), net_, loop_);
  rx.setListening({Codec::g711u});
  tx.setSending(MediaEndpoint::SendState{rx.address(), Codec::g711u});
  loop_.runUntil(SimTime{} + 200_ms);
  rx.resetStats();
  EXPECT_EQ(rx.packetsReceived(), 0u);
  EXPECT_FALSE(rx.hears(EndpointId{1}));
}

// ------------------------------------------------------------------ bridge

class BridgeFixture : public ::testing::Test {
 protected:
  BridgeFixture() : net_(loop_), bridge_(net_, loop_) {
    for (int i = 0; i < 3; ++i) {
      legs_[i] = bridge_.addLeg(MediaAddress::parse("10.0.1.1", 7000 + i));
      talkers_[i] = std::make_unique<MediaEndpoint>(
          EndpointId{100 + static_cast<std::uint64_t>(i)},
          MediaAddress::parse("10.0.2.1", 8000 + i), net_, loop_);
      talkers_[i]->setListening({Codec::g711u});
      // Bridge leg i: listens on g711u, mixes toward talker i.
      bridge_.setLegListening(legs_[i], {Codec::g711u});
      bridge_.setLegSending(legs_[i], MediaEndpoint::SendState{
                                          talkers_[i]->address(), Codec::g711u});
      talkers_[i]->setSending(MediaEndpoint::SendState{
          bridge_.legAddress(legs_[i]), Codec::g711u});
    }
  }

  [[nodiscard]] bool hears(int listener, int speaker) const {
    return talkers_[listener]->hears(EndpointId{100 + static_cast<std::uint64_t>(speaker)});
  }

  EventLoop loop_;
  MediaNetwork net_;
  ConferenceBridge bridge_;
  std::size_t legs_[3];
  std::unique_ptr<MediaEndpoint> talkers_[3];
};

TEST_F(BridgeFixture, DefaultMixIsFullMeshWithoutSelf) {
  loop_.runUntil(SimTime{} + 1_s);
  for (int listener = 0; listener < 3; ++listener) {
    for (int speaker = 0; speaker < 3; ++speaker) {
      EXPECT_EQ(hears(listener, speaker), listener != speaker)
          << listener << " vs " << speaker;
    }
  }
}

TEST_F(BridgeFixture, MatrixEdgeControlsAudibility) {
  bridge_.setAudible(legs_[0], legs_[1], false);  // leg 1 no longer hears leg 0
  loop_.runUntil(SimTime{} + 1_s);
  EXPECT_FALSE(hears(1, 0));
  EXPECT_TRUE(hears(1, 2));
  EXPECT_TRUE(hears(0, 1));
}

TEST_F(BridgeFixture, SelfEdgeCannotBeEnabled) {
  bridge_.setAudible(legs_[0], legs_[0], true);
  EXPECT_FALSE(bridge_.audible(legs_[0], legs_[0]));
}

TEST_F(BridgeFixture, MutedLegEmitsNothing) {
  bridge_.setLegSending(legs_[2], std::nullopt);
  loop_.runUntil(SimTime{} + 1_s);
  EXPECT_FALSE(hears(2, 0));
  EXPECT_FALSE(hears(2, 1));
  // But leg 2's input still reaches the others.
  EXPECT_TRUE(hears(0, 2));
}

TEST_F(BridgeFixture, WrongCodecInputIgnored) {
  talkers_[1]->setSending(MediaEndpoint::SendState{
      bridge_.legAddress(legs_[1]), Codec::g729});  // not negotiated
  loop_.runUntil(SimTime{} + 1_s);
  EXPECT_FALSE(hears(0, 1));
  EXPECT_TRUE(hears(0, 2));
}

TEST_F(BridgeFixture, PacketsCountPerLeg) {
  loop_.runUntil(SimTime{} + 1_s);
  for (int i = 0; i < 3; ++i) {
    EXPECT_GT(bridge_.legPacketsIn(legs_[i]), 10u);
    EXPECT_GT(bridge_.legPacketsOut(legs_[i]), 10u);
  }
}

}  // namespace
}  // namespace cmc
