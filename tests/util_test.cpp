// Unit tests for src/util: ids, rng, bytes, time.
#include <gtest/gtest.h>

#include <set>
#include <sstream>
#include <unordered_set>

#include "util/bytes.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace cmc {
namespace {

TEST(Ids, DefaultIsInvalid) {
  SlotId id;
  EXPECT_FALSE(id.valid());
  EXPECT_EQ(id, SlotId{});
}

TEST(Ids, ValueRoundTrip) {
  SlotId id{42};
  EXPECT_TRUE(id.valid());
  EXPECT_EQ(id.value(), 42u);
}

TEST(Ids, Ordering) {
  EXPECT_LT(SlotId{1}, SlotId{2});
  EXPECT_NE(SlotId{1}, SlotId{2});
}

TEST(Ids, StreamFormat) {
  std::ostringstream oss;
  oss << TunnelId{7};
  EXPECT_EQ(oss.str(), "tun:7");
}

TEST(Ids, AllocatorIsMonotonic) {
  IdAllocator<BoxId> alloc;
  BoxId a = alloc.next();
  BoxId b = alloc.next();
  EXPECT_LT(a, b);
  EXPECT_TRUE(a.valid());
}

TEST(Ids, HashUsableInUnorderedSet) {
  std::unordered_set<SlotId> set;
  set.insert(SlotId{1});
  set.insert(SlotId{1});
  set.insert(SlotId{2});
  EXPECT_EQ(set.size(), 2u);
}

TEST(Rng, DeterministicFromSeed) {
  Rng a{123}, b{123};
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a(), b());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a{1}, b{2};
  int same = 0;
  for (int i = 0; i < 100; ++i) {
    if (a() == b()) ++same;
  }
  EXPECT_LT(same, 3);
}

TEST(Rng, BelowRespectsBound) {
  Rng rng{7};
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.below(17), 17u);
}

TEST(Rng, RangeInclusive) {
  Rng rng{9};
  std::set<std::int64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    auto v = rng.range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);  // all values hit
}

TEST(Rng, Uniform01InRange) {
  Rng rng{11};
  for (int i = 0; i < 1000; ++i) {
    double v = rng.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, UniformMeanRoughlyCentered) {
  Rng rng{13};
  double sum = 0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) sum += rng.uniform(2.0, 4.0);
  EXPECT_NEAR(sum / kN, 3.0, 0.05);
}

TEST(Bytes, IntegerRoundTrip) {
  ByteWriter w;
  w.u8(0xab);
  w.u16(0x1234);
  w.u32(0xdeadbeef);
  w.u64(0x0123456789abcdefULL);
  w.boolean(true);

  ByteReader r{w.bytes()};
  EXPECT_EQ(r.u8(), 0xab);
  EXPECT_EQ(r.u16(), 0x1234);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 0x0123456789abcdefULL);
  EXPECT_TRUE(r.boolean());
  EXPECT_TRUE(r.ok());
  EXPECT_TRUE(r.atEnd());
}

TEST(Bytes, StringRoundTrip) {
  ByteWriter w;
  w.str("hello");
  w.str("");
  w.str(std::string(1000, 'x'));

  ByteReader r{w.bytes()};
  EXPECT_EQ(r.str(), "hello");
  EXPECT_EQ(r.str(), "");
  EXPECT_EQ(r.str(), std::string(1000, 'x'));
  EXPECT_TRUE(r.ok());
}

TEST(Bytes, OverrunMarksReaderBad) {
  ByteWriter w;
  w.u16(7);
  ByteReader r{w.bytes()};
  (void)r.u32();  // only 2 bytes available
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, BadReaderReturnsZeroes) {
  std::vector<std::uint8_t> empty;
  ByteReader r{empty};
  EXPECT_EQ(r.u64(), 0u);
  EXPECT_EQ(r.str(), "");
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, TruncatedStringFails) {
  ByteWriter w;
  w.u32(100);  // claims 100 bytes follow; none do
  ByteReader r{w.bytes()};
  (void)r.str();
  EXPECT_FALSE(r.ok());
}

TEST(Bytes, Fnv1aStableAndOrderSensitive) {
  ByteWriter a, b;
  a.u8(1);
  a.u8(2);
  b.u8(2);
  b.u8(1);
  EXPECT_NE(fnv1a(a.bytes()), fnv1a(b.bytes()));
  EXPECT_EQ(fnv1a(a.bytes()), fnv1a(a.bytes()));
}

TEST(SimTime, ArithmeticAndComparison) {
  using namespace literals;
  SimTime t0;
  SimTime t1 = t0 + 5_ms;
  EXPECT_LT(t0, t1);
  EXPECT_EQ((t1 - t0), 5_ms);
  EXPECT_DOUBLE_EQ(t1.millis(), 5.0);
}

TEST(SimTime, LiteralUnits) {
  using namespace literals;
  EXPECT_EQ(1_s, 1000_ms);
  EXPECT_EQ(1_ms, 1000_us);
}

}  // namespace
}  // namespace cmc
