// Integration tests over whole signaling paths (PathSystem): the six path
// types of paper Section V, transparency of flowlinks, muting end to end,
// and goal replacement mid-flight.
#include <gtest/gtest.h>

#include "core/path.hpp"

namespace cmc {
namespace {

using K = GoalKind;

PathSystem makePath(K left, K right, std::size_t flowlinks) {
  return PathSystem(PathSystem::makeGoal(left, PathEnd::left),
                    PathSystem::makeGoal(right, PathEnd::right), flowlinks);
}

// ------------------------------------------------ path types, no flowlinks

TEST(PathTypes, OpenOpenConvergesToBothFlowing) {
  auto path = makePath(K::openSlot, K::openSlot, 0);
  path.run();
  EXPECT_TRUE(path.quiescent());
  EXPECT_TRUE(path.bothFlowing());
  EXPECT_TRUE(path.mediaEnabled(PathEnd::left));
  EXPECT_TRUE(path.mediaEnabled(PathEnd::right));
}

TEST(PathTypes, OpenHoldConvergesToBothFlowing) {
  auto path = makePath(K::openSlot, K::holdSlot, 0);
  path.run();
  EXPECT_TRUE(path.bothFlowing());
}

TEST(PathTypes, HoldOpenConvergesToBothFlowing) {
  auto path = makePath(K::holdSlot, K::openSlot, 0);
  path.run();
  EXPECT_TRUE(path.bothFlowing());
}

TEST(PathTypes, CloseCloseStaysBothClosed) {
  auto path = makePath(K::closeSlot, K::closeSlot, 0);
  path.run();
  EXPECT_TRUE(path.bothClosed());
}

TEST(PathTypes, CloseHoldStaysBothClosed) {
  auto path = makePath(K::closeSlot, K::holdSlot, 0);
  path.run();
  EXPECT_TRUE(path.bothClosed());
}

TEST(PathTypes, HoldHoldStaysBothClosed) {
  // Neither end originates: the path rests in bothClosed (the stability
  // disjunct of the holdSlot/holdSlot specification).
  auto path = makePath(K::holdSlot, K::holdSlot, 0);
  path.run();
  EXPECT_TRUE(path.bothClosed());
}

TEST(PathTypes, CloseOpenNeverFlowsAndKeepsRetrying) {
  auto path = makePath(K::closeSlot, K::openSlot, 0);
  path.run();
  EXPECT_FALSE(path.bothFlowing());
  EXPECT_TRUE(path.bothClosed());
  // The openslot wants to retry (and would livelock if fired forever).
  EXPECT_TRUE(retryPending(path.endpointGoal(PathEnd::right)));
  // One retry round: still no flow.
  path.fireRetry(PathEnd::right);
  path.run();
  EXPECT_FALSE(path.bothFlowing());
  EXPECT_TRUE(retryPending(path.endpointGoal(PathEnd::right)));
}

// ------------------------------------------------- path types, 1 flowlink

class PathTypesLinked : public ::testing::TestWithParam<std::size_t> {};

TEST_P(PathTypesLinked, OpenOpenFlowsThroughFlowlinks) {
  auto path = makePath(K::openSlot, K::openSlot, GetParam());
  path.run();
  EXPECT_TRUE(path.quiescent());
  EXPECT_TRUE(path.bothFlowing());
  for (std::size_t i = 0; i < path.flowlinkCount(); ++i) {
    EXPECT_EQ(path.flowlinkSlot(i, Side::A).state(), ProtocolState::flowing);
    EXPECT_EQ(path.flowlinkSlot(i, Side::B).state(), ProtocolState::flowing);
  }
}

TEST_P(PathTypesLinked, OpenHoldFlowsThroughFlowlinks) {
  auto path = makePath(K::openSlot, K::holdSlot, GetParam());
  path.run();
  EXPECT_TRUE(path.bothFlowing());
}

TEST_P(PathTypesLinked, CloseOpenNeverFlowsThroughFlowlinks) {
  auto path = makePath(K::closeSlot, K::openSlot, GetParam());
  path.run();
  EXPECT_FALSE(path.bothFlowing());
  // The whole path must come back down: every interior slot dead.
  for (std::size_t i = 0; i < path.flowlinkCount(); ++i) {
    EXPECT_TRUE(isDead(path.flowlinkSlot(i, Side::A).state()));
    EXPECT_TRUE(isDead(path.flowlinkSlot(i, Side::B).state()));
  }
}

TEST_P(PathTypesLinked, CloseCloseStaysDownThroughFlowlinks) {
  auto path = makePath(K::closeSlot, K::closeSlot, GetParam());
  path.run();
  EXPECT_TRUE(path.bothClosed());
}

TEST_P(PathTypesLinked, HoldHoldRestsClosedThroughFlowlinks) {
  auto path = makePath(K::holdSlot, K::holdSlot, GetParam());
  path.run();
  EXPECT_TRUE(path.bothClosed());
}

INSTANTIATE_TEST_SUITE_P(FlowlinkCounts, PathTypesLinked,
                         ::testing::Values(1, 2, 3, 5, 8));

// ------------------------------------------------------------ transparency

TEST(PathTransparency, DescriptorsTravelEndToEndUnchanged) {
  auto path = makePath(K::openSlot, K::openSlot, 3);
  path.run();
  ASSERT_TRUE(path.bothFlowing());
  // The descriptor the right endpoint received is the one the left minted,
  // byte for byte, despite three intervening flowlink boxes.
  const auto& l = path.endpointSlot(PathEnd::left);
  const auto& r = path.endpointSlot(PathEnd::right);
  EXPECT_EQ(r.remoteDescriptor()->id, l.lastDescriptorSent());
  EXPECT_EQ(l.remoteDescriptor()->id, r.lastDescriptorSent());
}

TEST(PathTransparency, SelectorsCarrySenderAddressEndToEnd) {
  auto path = makePath(K::openSlot, K::openSlot, 2);
  path.run();
  ASSERT_TRUE(path.bothFlowing());
  const auto& l = path.endpointSlot(PathEnd::left);
  // The selector the left end received was minted by the right endpoint
  // and carries the right endpoint's media address (10.0.1.1).
  EXPECT_EQ(l.lastSelectorReceived()->sender,
            MediaAddress::parse("10.0.1.1", 6001));
}

// ------------------------------------------------------------------ muting

TEST(PathMuting, MuteOutStopsThatDirectionOnly) {
  auto path = makePath(K::openSlot, K::openSlot, 1);
  path.run();
  ASSERT_TRUE(path.bothFlowing());
  path.setMute(PathEnd::left, false, /*muteOut=*/true);
  path.run();
  EXPECT_FALSE(path.mediaEnabled(PathEnd::left));
  EXPECT_TRUE(path.mediaEnabled(PathEnd::right));
  EXPECT_TRUE(path.bothFlowing());  // recurrence: the path re-stabilizes
}

TEST(PathMuting, MuteInStopsOppositeDirection) {
  auto path = makePath(K::openSlot, K::openSlot, 1);
  path.run();
  path.setMute(PathEnd::left, /*muteIn=*/true, false);
  path.run();
  // Left refuses to receive -> right cannot send.
  EXPECT_FALSE(path.mediaEnabled(PathEnd::right));
  EXPECT_TRUE(path.mediaEnabled(PathEnd::left));
  EXPECT_TRUE(path.bothFlowing());
}

TEST(PathMuting, UnmuteRestoresFlow) {
  auto path = makePath(K::openSlot, K::openSlot, 2);
  path.run();
  path.setMute(PathEnd::right, true, true);
  path.run();
  EXPECT_FALSE(path.mediaEnabled(PathEnd::left));
  EXPECT_FALSE(path.mediaEnabled(PathEnd::right));
  path.setMute(PathEnd::right, false, false);
  path.run();
  EXPECT_TRUE(path.mediaEnabled(PathEnd::left));
  EXPECT_TRUE(path.mediaEnabled(PathEnd::right));
  EXPECT_TRUE(path.bothFlowing());
}

TEST(PathMuting, ConcurrentModifyBothDirectionsConverges) {
  // Section VI-C: describe/select in opposite directions do not constrain
  // each other; concurrent changes must still converge.
  auto path = makePath(K::openSlot, K::openSlot, 1);
  path.run();
  path.setMute(PathEnd::left, true, false);   // both sent before any delivery
  path.setMute(PathEnd::right, true, false);
  path.run();
  EXPECT_FALSE(path.mediaEnabled(PathEnd::left));
  EXPECT_FALSE(path.mediaEnabled(PathEnd::right));
  EXPECT_TRUE(path.bothFlowing());
  path.setMute(PathEnd::left, false, false);
  path.setMute(PathEnd::right, false, false);
  path.run();
  EXPECT_TRUE(path.bothFlowing());
  EXPECT_TRUE(path.mediaEnabled(PathEnd::left));
  EXPECT_TRUE(path.mediaEnabled(PathEnd::right));
}

// --------------------------------------------------------- goal replacement

TEST(PathReplacement, HoldToOpenBringsPathUp) {
  auto path = makePath(K::holdSlot, K::holdSlot, 1);
  path.run();
  ASSERT_TRUE(path.bothClosed());
  path.replaceGoal(PathEnd::left,
                   PathSystem::makeGoal(K::openSlot, PathEnd::left));
  path.run();
  EXPECT_TRUE(path.bothFlowing());
}

TEST(PathReplacement, OpenToCloseBringsPathDown) {
  auto path = makePath(K::openSlot, K::openSlot, 2);
  path.run();
  ASSERT_TRUE(path.bothFlowing());
  path.replaceGoal(PathEnd::left, CloseSlotGoal{});
  path.run();
  EXPECT_FALSE(path.bothFlowing());
  EXPECT_TRUE(isDead(path.endpointSlot(PathEnd::left).state()));
  EXPECT_TRUE(isDead(path.endpointSlot(PathEnd::right).state()) ||
              retryPending(path.endpointGoal(PathEnd::right)));
}

TEST(PathReplacement, CloseToOpenAfterRejectionRecovers) {
  auto path = makePath(K::closeSlot, K::openSlot, 1);
  path.run();
  ASSERT_TRUE(path.bothClosed());
  path.replaceGoal(PathEnd::left,
                   PathSystem::makeGoal(K::openSlot, PathEnd::left));
  path.run();
  // The left open travels right; the right openslot accepts (it may also
  // have a retry pending from earlier rejections; both opens meeting in an
  // open/open race must still resolve).
  path.fireRetry(PathEnd::right);
  path.run();
  EXPECT_TRUE(path.bothFlowing());
}

TEST(PathReplacement, ReopenAfterFullTeardownViaRetry) {
  // Recurrence across a whole cycle: up, torn down by closeSlot, goal
  // switched back to openSlot at the same end, path comes back up.
  auto path = makePath(K::openSlot, K::openSlot, 1);
  path.run();
  ASSERT_TRUE(path.bothFlowing());
  path.replaceGoal(PathEnd::left, CloseSlotGoal{});
  path.run();
  ASSERT_FALSE(path.bothFlowing());
  path.replaceGoal(PathEnd::left,
                   PathSystem::makeGoal(K::openSlot, PathEnd::left));
  path.run();
  path.fireRetry(PathEnd::left);
  path.fireRetry(PathEnd::right);
  path.run();
  EXPECT_TRUE(path.bothFlowing());
}

// ------------------------------------------------------- race: both ends open

TEST(PathRaces, SimultaneousOpensResolveByChannelInitiator) {
  // With no flowlink, both ends open at once inside one tunnel; the
  // channel-initiator (left) wins and the right backs off to acceptor.
  auto path = makePath(K::openSlot, K::openSlot, 0);
  // Both attach before any delivery: both opens are in flight.
  EXPECT_EQ(path.channel(0).depthToward(Side::B), 1u);
  EXPECT_EQ(path.channel(0).depthToward(Side::A), 1u);
  path.run();
  EXPECT_TRUE(path.bothFlowing());
}

TEST(PathRaces, SimultaneousOpensThroughFlowlink) {
  auto path = makePath(K::openSlot, K::openSlot, 1);
  path.run();
  EXPECT_TRUE(path.bothFlowing());
  EXPECT_TRUE(path.quiescent());
}

// ----------------------------------------------------------- fingerprinting

TEST(PathFingerprint, EqualSystemsEqualFingerprints) {
  auto p1 = makePath(K::openSlot, K::holdSlot, 1);
  auto p2 = makePath(K::openSlot, K::holdSlot, 1);
  EXPECT_EQ(p1.fingerprint(), p2.fingerprint());
  p1.run();
  p2.run();
  EXPECT_EQ(p1.fingerprint(), p2.fingerprint());
}

TEST(PathFingerprint, DifferentProgressDifferentFingerprints) {
  auto p1 = makePath(K::openSlot, K::holdSlot, 1);
  auto p2 = makePath(K::openSlot, K::holdSlot, 1);
  p2.run();
  EXPECT_NE(p1.fingerprint(), p2.fingerprint());
}

TEST(PathFingerprint, CopyIsIndependent) {
  auto p1 = makePath(K::openSlot, K::openSlot, 1);
  PathSystem p2 = p1;  // value semantics
  p2.run();
  EXPECT_NE(p1.fingerprint(), p2.fingerprint());
  p1.run();
  EXPECT_EQ(p1.fingerprint(), p2.fingerprint());
}

// ------------------------------------------------------------ enabled actions

TEST(PathActions, EnabledActionsMatchQueues) {
  auto path = makePath(K::openSlot, K::openSlot, 0);
  auto actions = path.enabledActions();
  // Two opens in flight -> two deliver actions.
  ASSERT_EQ(actions.size(), 2u);
  for (const auto& a : actions) EXPECT_EQ(a.kind, PathAction::Kind::deliver);
}

TEST(PathActions, ApplyDeliverStepsSystem) {
  auto path = makePath(K::openSlot, K::holdSlot, 0);
  auto actions = path.enabledActions();
  ASSERT_EQ(actions.size(), 1u);
  path.apply(actions[0]);
  // Hold end accepted: oack + select are now in flight leftward.
  EXPECT_EQ(path.channel(0).depthToward(Side::A), 2u);
}

TEST(PathActions, DeferredAttachExposesAttachActions) {
  PathSystem path(PathSystem::makeGoal(K::openSlot, PathEnd::left),
                  PathSystem::makeGoal(K::openSlot, PathEnd::right), 1,
                  /*defer_attach=*/true);
  auto actions = path.enabledActions();
  std::size_t attaches = 0;
  for (const auto& a : actions) {
    if (a.kind == PathAction::Kind::attach) ++attaches;
  }
  EXPECT_EQ(attaches, 3u);  // two endpoints + one flowlink box
  for (const auto& a : actions) path.apply(a);
  path.run();
  EXPECT_TRUE(path.bothFlowing());
}

TEST(PathActions, ChaosBudgetExposesChaosActions) {
  PathSystem path(PathSystem::makeGoal(K::openSlot, PathEnd::left),
                  PathSystem::makeGoal(K::openSlot, PathEnd::right), 0,
                  /*defer_attach=*/true);
  path.setChaosBudget(2);
  auto actions = path.enabledActions();
  std::size_t chaos = 0;
  for (const auto& a : actions) {
    if (a.kind == PathAction::Kind::chaos) ++chaos;
  }
  EXPECT_GT(chaos, 0u);
}

TEST(PathActions, ChaosThenAttachStillConverges) {
  // A chaotic prefix must not be able to wedge the goals: whatever mess the
  // chaos phase makes, after attach the path reaches its specified state.
  PathSystem path(PathSystem::makeGoal(K::openSlot, PathEnd::left),
                  PathSystem::makeGoal(K::openSlot, PathEnd::right), 0,
                  /*defer_attach=*/true);
  path.setChaosBudget(4);
  // Chaos: left opens (muted variant), right closes it after attach etc.
  PathAction chaos;
  chaos.kind = PathAction::Kind::chaos;
  chaos.party = 0;
  chaos.chaosSignal = SignalKind::open;
  chaos.chaosVariant = 1;
  path.apply(chaos);
  path.run();  // right absorbs silently (unattached)
  PathAction attach0, attach1;
  attach0.kind = PathAction::Kind::attach;
  attach0.party = 0;
  attach1.kind = PathAction::Kind::attach;
  attach1.party = 1;
  path.apply(attach1);  // right attaches first: sees slot 'opened', accepts
  path.apply(attach0);  // left attaches while its own chaos open in flight
  path.run();
  while (retryPending(path.endpointGoal(PathEnd::left)) ||
         retryPending(path.endpointGoal(PathEnd::right))) {
    path.fireRetry(PathEnd::left);
    path.fireRetry(PathEnd::right);
    path.run();
  }
  EXPECT_TRUE(path.bothFlowing());
}

TEST(PathActions, ModifyBudgetExposesModifyActions) {
  auto path = makePath(K::openSlot, K::openSlot, 0);
  path.run();
  path.setModifyBudget(1);
  auto actions = path.enabledActions();
  std::size_t modifies = 0;
  for (const auto& a : actions) {
    if (a.kind == PathAction::Kind::modifyMute) ++modifies;
  }
  EXPECT_EQ(modifies, 6u);  // 3 non-current combos per endpoint
}

// ----------------------------------------------------------------- tracing

TEST(PathTrace, TraceRecordsSignalSequence) {
  PathSystem path(PathSystem::makeGoal(K::openSlot, PathEnd::left),
                  PathSystem::makeGoal(K::holdSlot, PathEnd::right), 0,
                  /*defer_attach=*/true);
  path.enableTrace(true);
  PathAction attach0;
  attach0.kind = PathAction::Kind::attach;
  attach0.party = 0;
  path.apply(attach0);
  PathAction attach1 = attach0;
  attach1.party = 1;
  path.apply(attach1);
  path.run();
  ASSERT_GE(path.trace().size(), 3u);
  EXPECT_NE(path.trace()[0].signal.find("open"), std::string::npos);
}

}  // namespace
}  // namespace cmc
