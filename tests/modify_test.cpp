// Tests for mid-channel modifications beyond muting (paper Section VI-B
// and footnote 4): unilateral codec re-selection within an episode, and
// endpoint address migration (the mobility application of Section X-F) —
// end to end, through flowlink boxes, with media following.
#include <gtest/gtest.h>

#include "core/path.hpp"
#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

namespace cmc {
namespace {

using namespace literals;
using K = GoalKind;

// ------------------------------------------------ protocol-level (PathSystem)

TEST(Reselect, CodecSwitchWithinDescriptorList) {
  PathSystem path(PathSystem::makeGoal(K::openSlot, PathEnd::left),
                  PathSystem::makeGoal(K::openSlot, PathEnd::right), 1);
  path.run();
  ASSERT_TRUE(path.bothFlowing());
  // Initial choice is the best common codec.
  ASSERT_EQ(path.endpointSlot(PathEnd::right).lastSelectorReceived()->codec,
            Codec::g711u);
  // Left switches to the lower-bandwidth codec the right also offered.
  // (Drive the goal directly through the path's goal accessors via a mute
  // no-op + manual check: PathSystem has no reselect action, so exercise
  // the goal API through the simulator below; here check protocol legality
  // via SlotEndpoint.)
  SUCCEED();
}

// --------------------------------------------------------- simulator level

class ModifyFixture : public ::testing::Test {
 protected:
  ModifyFixture()
      : sim_(TimingModel::paperDefaults(), 23),
        a_(sim_.addBox<UserDeviceBox>("A", sim_.mediaNetwork(), sim_.loop(),
                                      MediaAddress::parse("10.6.0.1", 5000))),
        b_(sim_.addBox<UserDeviceBox>("B", sim_.mediaNetwork(), sim_.loop(),
                                      MediaAddress::parse("10.6.0.2", 5000))) {
    sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
    sim_.runFor(1_s);
  }

  Simulator sim_;
  UserDeviceBox& a_;
  UserDeviceBox& b_;
};

TEST_F(ModifyFixture, CodecSwitchMidCall) {
  ASSERT_TRUE(a_.inCall());
  ASSERT_EQ(a_.media().sendingState()->codec, Codec::g711u);
  // A switches to G.726 (offered by B) without renegotiation.
  bool switched = false;
  sim_.inject("A", [&switched](Box& bx) {
    switched = static_cast<UserDeviceBox&>(bx).switchCodec(Codec::g726);
  });
  sim_.runFor(500_ms);
  EXPECT_TRUE(switched);
  EXPECT_EQ(a_.media().sendingState()->codec, Codec::g726);
  // B keeps receiving (it listens per the selectors it receives).
  b_.media().resetStats();
  sim_.runFor(1_s);
  EXPECT_GT(b_.media().packetsReceived(), 20u);
  EXPECT_TRUE(b_.media().hears(a_.media().id()));
}

TEST_F(ModifyFixture, CodecNotOfferedIsRefused) {
  bool switched = true;
  sim_.inject("A", [&switched](Box& bx) {
    switched = static_cast<UserDeviceBox&>(bx).switchCodec(Codec::g729);
  });
  sim_.runFor(200_ms);
  EXPECT_FALSE(switched);
  EXPECT_EQ(a_.media().sendingState()->codec, Codec::g711u);  // unchanged
}

TEST_F(ModifyFixture, AddressMigrationMidCall) {
  ASSERT_TRUE(b_.media().hears(a_.media().id()));
  // A moves to a new address (e.g. WiFi -> cellular). The describe goes out
  // and B's subsequent packets must land at the new address.
  const MediaAddress new_addr = MediaAddress::parse("10.6.9.9", 6000);
  sim_.inject("A", [new_addr](Box& bx) {
    static_cast<UserDeviceBox&>(bx).migrate(new_addr);
  });
  sim_.runFor(1_s);
  EXPECT_EQ(a_.media().address(), new_addr);
  EXPECT_EQ(b_.media().sendingState()->target, new_addr);
  a_.media().resetStats();
  b_.media().resetStats();
  sim_.runFor(1_s);
  // Two-way media continues at the new address.
  EXPECT_TRUE(a_.media().hears(b_.media().id()));
  EXPECT_TRUE(b_.media().hears(a_.media().id()));
  EXPECT_EQ(a_.media().packetsClipped(), 0u);
}

TEST_F(ModifyFixture, MigrationIsIdempotent) {
  const MediaAddress same = a_.media().address();
  sim_.inject("A", [same](Box& bx) {
    static_cast<UserDeviceBox&>(bx).migrate(same);
  });
  const auto before = sim_.signalsDelivered();
  sim_.runFor(500_ms);
  // No descriptor change -> no signaling traffic.
  EXPECT_EQ(sim_.signalsDelivered(), before);
}

TEST_F(ModifyFixture, DoubleMigration) {
  const MediaAddress addr1 = MediaAddress::parse("10.6.9.1", 6000);
  const MediaAddress addr2 = MediaAddress::parse("10.6.9.2", 6000);
  sim_.inject("A", [addr1](Box& bx) {
    static_cast<UserDeviceBox&>(bx).migrate(addr1);
  });
  sim_.runFor(300_ms);
  sim_.inject("A", [addr2](Box& bx) {
    static_cast<UserDeviceBox&>(bx).migrate(addr2);
  });
  sim_.runFor(1_s);
  EXPECT_EQ(b_.media().sendingState()->target, addr2);
  a_.media().resetStats();
  sim_.runFor(500_ms);
  EXPECT_TRUE(a_.media().hears(b_.media().id()));
}

TEST_F(ModifyFixture, MigrationWhileMutedAppliesOnUnmute) {
  sim_.inject("A", [](Box& bx) {
    static_cast<UserDeviceBox&>(bx).setMute(/*in=*/true, false);
  });
  sim_.runFor(300_ms);
  const MediaAddress new_addr = MediaAddress::parse("10.6.9.7", 6000);
  sim_.inject("A", [new_addr](Box& bx) {
    static_cast<UserDeviceBox&>(bx).migrate(new_addr);
  });
  sim_.runFor(300_ms);
  // Muted-in: B should not be sending at all right now.
  EXPECT_FALSE(b_.media().sendingNow());
  sim_.inject("A", [](Box& bx) {
    static_cast<UserDeviceBox&>(bx).setMute(false, false);
  });
  sim_.runFor(1_s);
  EXPECT_TRUE(b_.media().sendingNow());
  EXPECT_EQ(b_.media().sendingState()->target, new_addr);
}

}  // namespace
}  // namespace cmc
