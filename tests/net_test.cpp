// Tests for the TCP signaling transport: framing, loopback delivery, FIFO
// ordering, and a full media-channel setup between two endpoint goals
// talking over real sockets.
#include <gtest/gtest.h>

#include <condition_variable>
#include <future>

#include "core/goal.hpp"
#include "net/tcp_transport.hpp"
#include "obs/context.hpp"
#include "obs/trace.hpp"

namespace cmc::net {
namespace {

Descriptor desc(std::uint64_t id) {
  const Codec codecs[] = {Codec::g711u};
  return makeDescriptor(DescriptorId{id}, MediaAddress::parse("10.0.0.1", 5000),
                        codecs, false);
}

TEST(Framing, RoundTripSingleMessage) {
  ChannelMessage m = TunnelSignal{2, OpenSignal{Medium::audio, desc(4)}};
  auto frame = encodeFrame(m);
  FrameDecoder decoder;
  decoder.feed(frame.data(), frame.size());
  auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, m);
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_FALSE(decoder.error());
}

TEST(Framing, ByteAtATime) {
  ChannelMessage m = MetaSignal{MetaKind::custom, "paid", "x"};
  auto frame = encodeFrame(m);
  FrameDecoder decoder;
  std::optional<ChannelMessage> out;
  for (std::uint8_t byte : frame) {
    ASSERT_FALSE(out.has_value());
    decoder.feed(&byte, 1);
    out = decoder.next();
  }
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, m);
}

TEST(Framing, MultipleMessagesOneChunk) {
  std::vector<std::uint8_t> bytes;
  for (int i = 0; i < 5; ++i) {
    auto frame = encodeFrame(TunnelSignal{static_cast<std::uint32_t>(i),
                                          CloseSignal{}});
    bytes.insert(bytes.end(), frame.begin(), frame.end());
  }
  FrameDecoder decoder;
  decoder.feed(bytes.data(), bytes.size());
  for (std::uint32_t i = 0; i < 5; ++i) {
    auto out = decoder.next();
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(std::get<TunnelSignal>(*out).tunnel, i);
  }
  EXPECT_EQ(decoder.next(), std::nullopt);
}

TEST(Framing, TraceContextSurvivesRoundTrip) {
  TunnelSignal sig{2, OpenSignal{Medium::audio, desc(4)}};
  sig.ctx = obs::TraceContext{0x1234567890abcdefULL, 42};
  const ChannelMessage m = sig;
  auto frame = encodeFrame(m);
  FrameDecoder decoder;
  decoder.feed(frame.data(), frame.size());
  auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, m);  // equality deliberately ignores the causal ctx
  const auto& ts = std::get<TunnelSignal>(*out);
  EXPECT_EQ(ts.ctx.trace, 0x1234567890abcdefULL);
  EXPECT_EQ(ts.ctx.span, 42u);

  MetaSignal meta{MetaKind::custom, "paid", "x"};
  meta.ctx = obs::TraceContext{9, 10};
  auto meta_frame = encodeFrame(ChannelMessage{meta});
  FrameDecoder meta_decoder;
  meta_decoder.feed(meta_frame.data(), meta_frame.size());
  auto meta_out = meta_decoder.next();
  ASSERT_TRUE(meta_out.has_value());
  EXPECT_EQ(std::get<MetaSignal>(*meta_out).ctx, meta.ctx);
}

TEST(Framing, EmptyContextKeepsLegacyWireBytes) {
  // An empty ctx serializes with the original message tags, so runs without
  // propagation — including every mc canonicalization — see identical bytes
  // to the pre-context encoding. The ctx-bearing tag costs exactly the two
  // u64 ids.
  const auto legacy = encodeFrame(ChannelMessage{TunnelSignal{2, CloseSignal{}}});
  EXPECT_EQ(legacy[8], 0);  // body starts after the 8-byte header: tag 0
  TunnelSignal stamped{2, CloseSignal{}};
  stamped.ctx = obs::TraceContext{7, 9};
  const auto tagged = encodeFrame(ChannelMessage{stamped});
  EXPECT_EQ(tagged[8], 2);  // ctx-bearing tunnel-signal tag
  EXPECT_EQ(tagged.size(), legacy.size() + 16);
}

TEST(Framing, CorruptFrameDoesNotPoisonFollowingContext) {
  TunnelSignal first{1, CloseSignal{}};
  first.ctx = obs::TraceContext{11, 12};
  TunnelSignal second{2, CloseSignal{}};
  second.ctx = obs::TraceContext{21, 22};
  auto bad = encodeFrame(ChannelMessage{first});
  bad.back() ^= 0x5a;  // body byte flip: header checksum no longer matches
  const auto good = encodeFrame(ChannelMessage{second});

  FrameDecoder decoder;
  decoder.feed(bad.data(), bad.size());
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_FALSE(decoder.error());
  EXPECT_EQ(decoder.corruptFrames(), 1u);
  // The next frame decodes with its own context, untouched by the loss.
  decoder.feed(good.data(), good.size());
  auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(std::get<TunnelSignal>(*out).ctx, second.ctx);
}

TEST(Framing, OversizeFrameIsRejected) {
  FrameDecoder decoder;
  // Header: absurd length + arbitrary checksum.
  std::uint8_t huge[8] = {0xff, 0xff, 0xff, 0x7f, 0, 0, 0, 0};
  decoder.feed(huge, 8);
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_TRUE(decoder.error());
}

TEST(Framing, GarbagePayloadPoisonsDecoder) {
  // A body that checksums correctly but does not parse is a framing bug,
  // not line noise: the decoder must poison, not skip.
  const std::uint8_t body[3] = {0xee, 0, 0};  // invalid message tag
  ByteWriter w;
  w.u32(3);
  w.u32(frameChecksum(body, 3));
  for (std::uint8_t b : body) w.u8(b);
  FrameDecoder decoder;
  decoder.feed(w.bytes().data(), w.bytes().size());
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_TRUE(decoder.error());
}

TEST(Framing, ChecksumRejectsCorruptBodyAsLoss) {
  // A frame corrupted in transit is discarded like a lost signal — the
  // stream survives and the following frame still decodes.
  ChannelMessage corrupted = TunnelSignal{1, OpenSignal{Medium::audio, desc(9)}};
  ChannelMessage survivor = TunnelSignal{2, CloseSignal{}};
  auto bad = encodeFrame(corrupted);
  bad.back() ^= 0x5a;  // body byte flip; header checksum no longer matches
  auto good = encodeFrame(survivor);

  FrameDecoder decoder;
  decoder.feed(bad.data(), bad.size());
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_FALSE(decoder.error()) << "corruption must not poison the stream";
  EXPECT_EQ(decoder.corruptFrames(), 1u);

  decoder.feed(good.data(), good.size());
  auto out = decoder.next();
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, survivor);
  EXPECT_FALSE(decoder.error());
}

TEST(Framing, ChecksumCatchesHeaderLengthCorruption) {
  // Shrinking the advertised length misaligns the body: the checksum over
  // the truncated body fails and the bogus frame is skipped.
  ChannelMessage m = TunnelSignal{3, OpenSignal{Medium::audio, desc(5)}};
  auto frame = encodeFrame(m);
  frame[0] -= 1;  // length low byte: body now one short
  FrameDecoder decoder;
  decoder.feed(frame.data(), frame.size());
  EXPECT_EQ(decoder.next(), std::nullopt);
  EXPECT_EQ(decoder.corruptFrames(), 1u);
}

class LoopbackPair : public ::testing::Test {
 protected:
  void SetUp() override {
    listener_ = std::make_unique<TcpSignalingListener>(0);
    ASSERT_TRUE(listener_->ok());
    auto accepted = std::async(std::launch::async,
                               [this]() { return listener_->acceptOne(); });
    client_ = TcpSignalingPeer::connect("127.0.0.1", listener_->port());
    ASSERT_NE(client_, nullptr);
    server_ = accepted.get();
    ASSERT_NE(server_, nullptr);
  }

  std::unique_ptr<TcpSignalingListener> listener_;
  std::unique_ptr<TcpSignalingPeer> client_;
  std::unique_ptr<TcpSignalingPeer> server_;
};

TEST_F(LoopbackPair, DeliversInFifoOrder) {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::uint32_t> received;
  constexpr int kCount = 200;

  server_->start([&](const ChannelMessage& m) {
    std::lock_guard<std::mutex> lock(mutex);
    received.push_back(std::get<TunnelSignal>(m).tunnel);
    cv.notify_one();
  });
  client_->start([](const ChannelMessage&) {});

  for (std::uint32_t i = 0; i < kCount; ++i) {
    ASSERT_TRUE(client_->send(TunnelSignal{i, CloseSignal{}}));
  }
  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&]() { return received.size() == kCount; }));
  for (std::uint32_t i = 0; i < kCount; ++i) EXPECT_EQ(received[i], i);
}

TEST_F(LoopbackPair, BidirectionalTraffic) {
  std::promise<ChannelMessage> to_server, to_client;
  server_->start([&](const ChannelMessage& m) { to_server.set_value(m); });
  client_->start([&](const ChannelMessage& m) { to_client.set_value(m); });

  ChannelMessage from_client = MetaSignal{MetaKind::available, "", ""};
  ChannelMessage from_server = MetaSignal{MetaKind::custom, "hi", ""};
  ASSERT_TRUE(client_->send(from_client));
  ASSERT_TRUE(server_->send(from_server));
  EXPECT_EQ(to_server.get_future().get(), from_client);
  EXPECT_EQ(to_client.get_future().get(), from_server);
}

TEST_F(LoopbackPair, DropAndCorruptHooksLoseExactlyOneFrame) {
  std::mutex mutex;
  std::condition_variable cv;
  std::vector<std::uint32_t> received;
  server_->start([&](const ChannelMessage& m) {
    std::lock_guard<std::mutex> lock(mutex);
    received.push_back(std::get<TunnelSignal>(m).tunnel);
    cv.notify_one();
  });
  client_->start([](const ChannelMessage&) {});

  client_->dropNextFrame();
  ASSERT_TRUE(client_->send(TunnelSignal{0, CloseSignal{}}));  // vanishes
  client_->corruptNextFrame();
  ASSERT_TRUE(client_->send(TunnelSignal{1, CloseSignal{}}));  // checksum-rejected
  ASSERT_TRUE(client_->send(TunnelSignal{2, CloseSignal{}}));  // arrives

  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&]() { return !received.empty(); }));
  // Only the clean frame made it, and the connection survived both faults.
  EXPECT_EQ(received, (std::vector<std::uint32_t>{2}));
  EXPECT_TRUE(client_->isOpen());
  EXPECT_TRUE(server_->isOpen());
}

TEST_F(LoopbackPair, SendStampsCurrentContextWhenPropagationOn) {
  obs::TraceRecorder rec;
  rec.setPropagation(true);
  obs::setRecorder(&rec);

  std::mutex mutex;
  std::condition_variable cv;
  std::vector<obs::TraceContext> received;
  server_->start([&](const ChannelMessage& m) {
    std::lock_guard<std::mutex> lock(mutex);
    received.push_back(std::get<TunnelSignal>(m).ctx);
    cv.notify_one();
  });
  client_->start([](const ChannelMessage&) {});

  {
    // Sends inside a stimulus scope pick up its context in-band.
    obs::ContextScope scope(obs::TraceContext{5, 6});
    ASSERT_TRUE(client_->send(TunnelSignal{0, CloseSignal{}}));
    // An explicitly stamped signal keeps its own ids.
    TunnelSignal pre{1, CloseSignal{}};
    pre.ctx = obs::TraceContext{1, 2};
    ASSERT_TRUE(client_->send(pre));
  }
  // No surrounding stimulus: nothing to propagate.
  ASSERT_TRUE(client_->send(TunnelSignal{2, CloseSignal{}}));

  std::unique_lock<std::mutex> lock(mutex);
  ASSERT_TRUE(cv.wait_for(lock, std::chrono::seconds(5),
                          [&]() { return received.size() == 3; }));
  EXPECT_EQ(received[0], (obs::TraceContext{5, 6}));
  EXPECT_EQ(received[1], (obs::TraceContext{1, 2}));
  EXPECT_TRUE(received[2].empty());
  obs::setRecorder(nullptr);
}

TEST_F(LoopbackPair, CloseNotifiesPeer) {
  std::promise<void> closed;
  server_->start([](const ChannelMessage&) {},
                 [&]() { closed.set_value(); });
  client_->start([](const ChannelMessage&) {});
  client_->close();
  EXPECT_EQ(closed.get_future().wait_for(std::chrono::seconds(5)),
            std::future_status::ready);
  EXPECT_FALSE(client_->send(TunnelSignal{0, CloseSignal{}}));
}

TEST_F(LoopbackPair, MediaChannelSetupOverRealSockets) {
  // Drive the actual protocol machinery — two endpoint goals and slot FSMs
  // — over the socket: open/oack/select end to end.
  std::mutex mutex;
  std::condition_variable cv;

  SlotEndpoint caller_slot{SlotId{1}, /*channel_initiator=*/true};
  OpenSlotGoal caller{Medium::audio,
                     MediaIntent::endpoint(MediaAddress::parse("10.0.0.1", 5000),
                                           {Codec::g711u}),
                     DescriptorFactory{1}};
  SlotEndpoint callee_slot{SlotId{2}, false};
  HoldSlotGoal callee{MediaIntent::endpoint(MediaAddress::parse("10.0.0.2", 5000),
                                            {Codec::g711u}),
                      DescriptorFactory{2}};

  auto pump = [](TcpSignalingPeer& peer, Outbox&& out) {
    for (auto& item : out.take()) {
      ASSERT_TRUE(peer.send(TunnelSignal{0, std::move(item.signal)}));
    }
  };

  // Server side: callee goal reacts to every inbound signal.
  server_->start([&](const ChannelMessage& m) {
    std::lock_guard<std::mutex> lock(mutex);
    const auto& ts = std::get<TunnelSignal>(m);
    auto result = callee_slot.deliver(ts.signal);
    Outbox out;
    if (result.autoReply) out.send(callee_slot.id(), *result.autoReply);
    callee.onEvent(callee_slot, result.event, out);
    pump(*server_, std::move(out));
    cv.notify_one();
  });
  // Client side: caller goal likewise.
  client_->start([&](const ChannelMessage& m) {
    std::lock_guard<std::mutex> lock(mutex);
    const auto& ts = std::get<TunnelSignal>(m);
    auto result = caller_slot.deliver(ts.signal);
    Outbox out;
    if (result.autoReply) out.send(caller_slot.id(), *result.autoReply);
    caller.onEvent(caller_slot, result.event, out);
    pump(*client_, std::move(out));
    cv.notify_one();
  });

  {
    std::lock_guard<std::mutex> lock(mutex);
    Outbox out;
    caller.attach(caller_slot, out);
    pump(*client_, std::move(out));
  }

  std::unique_lock<std::mutex> lock(mutex);
  const bool converged = cv.wait_for(lock, std::chrono::seconds(5), [&]() {
    return caller_slot.state() == ProtocolState::flowing &&
           callee_slot.state() == ProtocolState::flowing &&
           caller_slot.lastSelectorReceived().has_value() &&
           callee_slot.lastSelectorReceived().has_value();
  });
  ASSERT_TRUE(converged);
  EXPECT_EQ(caller_slot.lastSelectorReceived()->codec, Codec::g711u);
  EXPECT_EQ(callee_slot.lastSelectorReceived()->codec, Codec::g711u);
}

}  // namespace
}  // namespace cmc::net
