// The sharded load runtime's contracts (docs/LOAD.md):
//
//   * determinism — same master seed ⇒ identical per-call outcomes and an
//     identical additive metrics rollup at 1 and 8 shards, clean and under
//     faults;
//   * churn hygiene — every call's teardown leaves its boxes with zero
//     slots and zero goals;
//   * fault isolation — per-call fault plans never bleed across calls: a
//     clean call behaves byte-identically whether or not faulty calls share
//     its shard;
//   * shard-local time — each shard's event loop owns its own virtual
//     clock, and a probe blowing its deadline dumps the flight recorder of
//     the shard that armed it, not a sibling's;
//   * conformance — traces captured under load satisfy the Fig. 5/10 wire
//     oracle (tests/conformance.hpp) on every tunnel.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <string>

#include "conformance.hpp"
#include "load/sharded_runtime.hpp"
#include "load/workload.hpp"
#include "obs/ops_server.hpp"
#include "obs/slo.hpp"
#include "sim/event_loop.hpp"
#include "util/bytes.hpp"

namespace cmc::load {
namespace {

WorkloadSpec smallWorkload(std::uint64_t seed, double fault_fraction = 0.0) {
  WorkloadSpec workload;
  workload.master_seed = seed;
  workload.calls = 60;
  workload.arrivals_per_s = 120.0;
  workload.flowlink_fraction = 0.5;
  workload.fault_fraction = fault_fraction;
  return workload;
}

TEST(Workload, GenerationIsDeterministicAndCoversAllTypes) {
  const WorkloadSpec workload = smallWorkload(11);
  const auto a = WorkloadGenerator(workload).generate();
  const auto b = WorkloadGenerator(workload).generate();
  ASSERT_EQ(a.size(), workload.calls);
  std::set<std::string> types;
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].seed, b[i].seed);
    EXPECT_EQ(a[i].arrival, b[i].arrival);
    EXPECT_EQ(a[i].left, b[i].left);
    EXPECT_EQ(a[i].right, b[i].right);
    EXPECT_EQ(a[i].hold, b[i].hold);
    types.insert(a[i].type_name);
  }
  // 60 draws over 6 types: every §V pair should appear.
  EXPECT_EQ(types.size(), callTypes().size());
  // Arrivals are non-decreasing and per-call seeds are distinct.
  std::set<std::uint64_t> seeds;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (i > 0) {
      EXPECT_LE(a[i - 1].arrival, a[i].arrival);
    }
    seeds.insert(a[i].seed);
  }
  EXPECT_EQ(seeds.size(), a.size());
}

TEST(Workload, FaultFractionDoesNotPerturbTheCallSet) {
  const auto clean = WorkloadGenerator(smallWorkload(11, 0.0)).generate();
  const auto faulty = WorkloadGenerator(smallWorkload(11, 0.4)).generate();
  ASSERT_EQ(clean.size(), faulty.size());
  for (std::size_t i = 0; i < clean.size(); ++i) {
    EXPECT_EQ(clean[i].left, faulty[i].left);
    EXPECT_EQ(clean[i].right, faulty[i].right);
    EXPECT_EQ(clean[i].flowlinks, faulty[i].flowlinks);
    EXPECT_EQ(clean[i].arrival, faulty[i].arrival);
    EXPECT_EQ(clean[i].hold, faulty[i].hold);
    EXPECT_EQ(clean[i].seed, faulty[i].seed);
    EXPECT_FALSE(clean[i].faulty);
  }
}

void expectSameOutcomes(const ShardedRuntime& a, const ShardedRuntime& b) {
  ASSERT_EQ(a.outcomes().size(), b.outcomes().size());
  for (std::size_t i = 0; i < a.outcomes().size(); ++i) {
    const CallOutcome& x = a.outcomes()[i];
    const CallOutcome& y = b.outcomes()[i];
    ASSERT_EQ(x.spec.id, y.spec.id);
    EXPECT_EQ(x.converged, y.converged) << "call " << x.spec.id;
    EXPECT_EQ(x.clean_teardown, y.clean_teardown) << "call " << x.spec.id;
    EXPECT_EQ(x.setup_latency_us, y.setup_latency_us) << "call " << x.spec.id;
    EXPECT_EQ(x.faults_injected, y.faults_injected) << "call " << x.spec.id;
  }
}

TEST(ShardDeterminism, SameSeedSameResultsAtOneAndEightShards) {
  const WorkloadSpec workload = smallWorkload(42);
  LoadConfig one;
  one.shards = 1;
  ShardedRuntime a(one);
  a.run(workload);
  LoadConfig eight;
  eight.shards = 8;
  ShardedRuntime b(eight);
  b.run(workload);

  expectSameOutcomes(a, b);
  // The whole additive rollup — counters and histograms, including the
  // per-box busy counters keyed by call id — must be byte-identical.
  EXPECT_EQ(a.metricsJson(), b.metricsJson());
  EXPECT_EQ(a.signalsDelivered(), b.signalsDelivered());
}

TEST(ShardDeterminism, HoldsUnderPerCallFaultPlans) {
  const WorkloadSpec workload = smallWorkload(42, /*fault_fraction=*/0.3);
  std::size_t faulty = 0;
  for (const CallSpec& call : WorkloadGenerator(workload).generate()) {
    if (call.faulty) ++faulty;
  }
  ASSERT_GT(faulty, 0u) << "seed must draw some faulty calls";

  LoadConfig one;
  one.shards = 1;
  ShardedRuntime a(one);
  a.run(workload);
  LoadConfig eight;
  eight.shards = 8;
  ShardedRuntime b(eight);
  b.run(workload);

  expectSameOutcomes(a, b);
  EXPECT_EQ(a.metricsJson(), b.metricsJson());
  // Stabilization must have recovered every faulted call before hang-up.
  EXPECT_EQ(a.convergedCount(), workload.calls);
}

// --------------------------------------------- rollup transparency pins
//
// Recorded digests of the full metrics rollup for fixed seeds. The
// shard-equivalence tests above prove 1-shard == 8-shard; these pin the
// *absolute* bytes, so any refactor underneath the load plane (descriptor
// storage, event pooling, signal routing) that shifts a single counter or
// histogram bucket fails here instead of slipping through as a "still
// self-consistent" change. Recorded at the introduction of the hot-path
// memory model; a mismatch means behavior changed, not just performance.

std::uint64_t rollupDigest(const WorkloadSpec& workload, std::size_t shards,
                           std::size_t* bytes_out) {
  LoadConfig config;
  config.shards = shards;
  ShardedRuntime runtime(config);
  runtime.run(workload);
  const std::string json = runtime.metricsJson();
  *bytes_out = json.size();
  return fnv1a(reinterpret_cast<const std::uint8_t*>(json.data()),
               json.size());
}

TEST(RollupPins, CleanRunMatchesRecordedDigest) {
  std::size_t bytes = 0;
  const std::uint64_t digest = rollupDigest(smallWorkload(42), 1, &bytes);
  EXPECT_EQ(bytes, 5270u);
  EXPECT_EQ(digest, 0x9e33345f4e5b379cULL);
}

TEST(RollupPins, FaultyEightShardRunMatchesRecordedDigest) {
  std::size_t bytes = 0;
  const std::uint64_t digest =
      rollupDigest(smallWorkload(42, /*fault_fraction=*/0.3), 8, &bytes);
  EXPECT_EQ(bytes, 5420u);
  EXPECT_EQ(digest, 0xb473ccab00fc03a0ULL);
}

TEST(Churn, TeardownLeavesNoLeakedSlotsOrGoals) {
  const WorkloadSpec workload = smallWorkload(7);
  LoadConfig config;
  config.shards = 4;
  ShardedRuntime runtime(config);
  runtime.run(workload);
  EXPECT_EQ(runtime.convergedCount(), workload.calls);
  EXPECT_EQ(runtime.cleanTeardownCount(), workload.calls);
  for (const CallOutcome& outcome : runtime.outcomes()) {
    EXPECT_TRUE(outcome.clean_teardown) << "call " << outcome.spec.id;
    EXPECT_GE(outcome.setup_latency_us, 0) << "call " << outcome.spec.id;
  }
  const auto* converged = runtime.metrics().findCounter("load.converged");
  ASSERT_NE(converged, nullptr);
  EXPECT_EQ(converged->value(), workload.calls);
}

TEST(FaultIsolation, CleanCallsAreUntouchedByFaultyNeighbors) {
  // Same seed, same call set (only the faulty flags differ); every call
  // that is clean in BOTH runs must behave identically even though in the
  // second run faulty calls share its shard. This is the no-bleed contract:
  // a per-call fault plan draws only from its own call's seed.
  const WorkloadSpec clean = smallWorkload(99, 0.0);
  const WorkloadSpec faulty = smallWorkload(99, 0.4);
  LoadConfig config;
  config.shards = 2;
  ShardedRuntime a(config);
  a.run(clean);
  ShardedRuntime b(config);
  b.run(faulty);

  const auto faulty_calls = WorkloadGenerator(faulty).generate();
  ASSERT_EQ(a.outcomes().size(), b.outcomes().size());
  std::size_t clean_calls = 0;
  for (std::size_t i = 0; i < a.outcomes().size(); ++i) {
    if (faulty_calls[i].faulty) continue;
    ++clean_calls;
    EXPECT_EQ(a.outcomes()[i].setup_latency_us,
              b.outcomes()[i].setup_latency_us)
        << "clean call " << i << " perturbed by faulty neighbors";
    EXPECT_EQ(b.outcomes()[i].faults_injected, 0u);
  }
  ASSERT_GT(clean_calls, 0u);
}

TEST(ShardLocalTime, EventLoopClocksAreInstanceLocal) {
  // Regression for the single-loop assumption audit: runUntilIdle's horizon
  // and now() are per-instance; advancing one shard's loop must not move
  // another's clock.
  EventLoop a;
  EventLoop b;
  a.schedule(SimDuration{5'000'000}, []() {});
  EXPECT_TRUE(a.runUntilIdle(std::chrono::seconds(10)));
  EXPECT_EQ(a.now().sinceStart(), SimDuration{5'000'000});
  EXPECT_EQ(b.now().sinceStart(), SimDuration{0});
  // The horizon is relative to the instance's own now, not absolute time:
  // a had already advanced to 5s, but b's 2s event fits b's fresh budget.
  b.schedule(SimDuration{2'000'000}, []() {});
  EXPECT_TRUE(b.runUntilIdle(SimDuration{3'000'000}));
  EXPECT_EQ(b.now().sinceStart(), SimDuration{2'000'000});
}

TEST(ShardLocalTime, ProbeDeadlineDumpsTheOwningShardsFlightRecorder) {
  // Impossible per-call deadline: every call fails its setup watchdog. The
  // failure must be recorded by the shard that armed the probe — failed
  // probe names on shard k are exactly the calls assigned to shard k, and
  // shard k's own flight recorder (installed thread-locally) captured the
  // dumps.
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "cmc_load_flight_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  WorkloadSpec workload = smallWorkload(5);
  workload.calls = 8;
  LoadConfig config;
  config.shards = 2;
  config.setup_deadline_us = 1;  // unmeetable
  config.flight_dir = dir.string();
  ShardedRuntime runtime(config);
  runtime.run(workload);

  EXPECT_EQ(runtime.probeFailures(), workload.calls);
  ASSERT_EQ(runtime.shardStats().size(), 2u);
  for (std::size_t shard = 0; shard < 2; ++shard) {
    const ShardStats& stats = runtime.shardStats()[shard];
    EXPECT_EQ(stats.failed_probes.size(), stats.calls);
    for (const std::string& name : stats.failed_probes) {
      // Probe names are "c<id>"; the call must belong to this shard.
      const std::uint64_t id = std::stoull(name.substr(1));
      EXPECT_EQ(id % 2, shard) << "probe " << name << " failed on shard "
                               << shard;
    }
    EXPECT_GT(stats.flight_dumps, 0u) << "shard " << shard;
  }
  // Dump files carry the owning shard's prefix.
  bool saw_shard0 = false;
  bool saw_shard1 = false;
  for (const auto& entry : fs::directory_iterator(dir)) {
    const std::string name = entry.path().filename().string();
    saw_shard0 = saw_shard0 || name.rfind("shard0", 0) == 0;
    saw_shard1 = saw_shard1 || name.rfind("shard1", 0) == 0;
  }
  EXPECT_TRUE(saw_shard0);
  EXPECT_TRUE(saw_shard1);
  fs::remove_all(dir);
}

TEST(Conformance, CapturedLoadTracesSatisfyTheWireOracle) {
  WorkloadSpec workload = smallWorkload(23);
  workload.calls = 40;
  LoadConfig config;
  config.shards = 4;
  config.capture_traces = true;
  config.trace_capacity = 1 << 18;
  ShardedRuntime runtime(config);
  runtime.run(workload);

  ASSERT_EQ(runtime.shardTraces().size(), 4u);
  std::size_t signals_checked = 0;
  for (std::size_t shard = 0; shard < runtime.shardTraces().size(); ++shard) {
    ASSERT_EQ(runtime.shardStats()[shard].trace_dropped, 0u)
        << "ring overflow would truncate tunnels mid-run";
    const auto violations =
        conformance::checkTrace(runtime.shardTraces()[shard]);
    for (const auto& violation : violations) {
      ADD_FAILURE() << "shard " << shard << " signal " << violation.index
                    << ": " << violation.what;
    }
    for (const auto& ev : runtime.shardTraces()[shard]) {
      if (ev.kind == obs::EventKind::signalRecv) ++signals_checked;
    }
  }
  EXPECT_GT(signals_checked, 100u);
}

// ------------------------------------------------------------ live telemetry

TEST(LiveTelemetry, SamplerOnOffRollupIsByteIdentical) {
  // The live plane is read-only: running with an ops endpoint, an
  // aggressive sampler, and SLO watchdogs must leave outcomes and the
  // final rollup byte-identical to a bare run.
  const WorkloadSpec workload = smallWorkload(42);
  LoadConfig off;
  off.shards = 4;
  ShardedRuntime bare(off);
  bare.run(workload);

  LoadConfig on;
  on.shards = 4;
  on.ops_port = 0;  // auto-pick
  on.sample_ms = 1; // hammer the registries as hard as possible
  obs::SloRule rule;
  rule.name = "teardown_ceiling";
  rule.counter = "load.call_teardowns";
  rule.max_value = 1e9;  // never breaches; evaluation still runs
  on.slos.push_back(rule);
  ShardedRuntime live(on);
  ASSERT_NE(live.telemetry(), nullptr);
  ASSERT_GT(live.opsPort(), 0);
  live.run(workload);

  expectSameOutcomes(bare, live);
  EXPECT_EQ(bare.metricsJson(), live.metricsJson());
  EXPECT_GE(live.telemetry()->ticks(), 1u);  // at least the final window
  EXPECT_TRUE(live.telemetry()->healthy());
  EXPECT_FALSE(live.telemetry()->everBreached());
}

TEST(LiveTelemetry, OpsEndpointServesMergedStateDuringAndAfterRun) {
  const WorkloadSpec workload = smallWorkload(17);
  LoadConfig config;
  config.shards = 4;
  config.ops_port = 0;
  config.sample_ms = 1;
  // Poll our own endpoint from the sampler callback — this exercises a
  // live request strictly *during* the run, against a half-built fleet.
  std::atomic<int> mid_run_polls{0};
  std::uint16_t port = 0;
  config.on_sample = [&mid_run_polls, &port](const TelemetryTick&) {
    auto c = obs::OpsClient::connect("127.0.0.1", port);
    if (c == nullptr) return;
    auto health = c->request("health");
    auto shards = c->request("shards");
    if (health && health->ok && shards && shards->ok) ++mid_run_polls;
  };
  ShardedRuntime runtime(config);
  port = runtime.opsPort();
  ASSERT_GT(port, 0);

  // Before the run: the endpoint is up and reports "starting".
  {
    auto c = obs::OpsClient::connect("127.0.0.1", port);
    ASSERT_NE(c, nullptr);
    auto health = c->request("health");
    ASSERT_TRUE(health.has_value());
    EXPECT_TRUE(health->ok);
    EXPECT_NE(health->body.find("health=starting"), std::string::npos);
  }

  runtime.run(workload);
  EXPECT_GE(mid_run_polls.load(), 1);

  // After the run: retained state, all verbs, Prometheus parses-ish.
  auto c = obs::OpsClient::connect("127.0.0.1", port);
  ASSERT_NE(c, nullptr);
  auto metrics = c->request("metrics");
  ASSERT_TRUE(metrics.has_value());
  EXPECT_TRUE(metrics->ok);
  EXPECT_EQ(metrics->content_type, "application/json");
  EXPECT_NE(metrics->body.find("\"load.call_arrivals\":60"), std::string::npos);
  EXPECT_NE(metrics->body.find("\"probe.call_setup_us\""), std::string::npos);

  auto prom = c->request("prom");
  ASSERT_TRUE(prom.has_value());
  EXPECT_NE(prom->body.find("cmc_load_call_arrivals_total 60"),
            std::string::npos);
  EXPECT_NE(prom->body.find("# TYPE cmc_probe_call_setup_us histogram"),
            std::string::npos);

  auto series = c->request("series", "4");
  ASSERT_TRUE(series.has_value());
  EXPECT_NE(series->body.find("\"windows\":["), std::string::npos);

  auto shards = c->request("shards");
  ASSERT_TRUE(shards.has_value());
  // All four shards report, and every call arrived and tore down.
  EXPECT_NE(shards->body.find("shard=3"), std::string::npos);

  auto health = c->request("health");
  ASSERT_TRUE(health.has_value());
  EXPECT_NE(health->body.find("health=ok"), std::string::npos);
  EXPECT_NE(health->body.find("final=1"), std::string::npos);
}

TEST(LiveTelemetry, SloBreachDegradesHealthAndDumpsWithoutStoppingTheRun) {
  namespace fs = std::filesystem;
  const fs::path dir =
      fs::temp_directory_path() / "cmc_slo_breach_test";
  fs::remove_all(dir);
  fs::create_directories(dir);

  const WorkloadSpec workload = smallWorkload(42);
  LoadConfig config;
  config.shards = 4;
  config.ops_port = 0;
  config.sample_ms = 1;
  config.flight_dir = dir.string();
  obs::SloRule rule;
  rule.name = "setup_p99";
  rule.histogram = "probe.call_setup_us";
  rule.quantile = 0.99;
  rule.max_value = 1.0;  // impossible bound: every evaluated window breaches
  rule.min_count = 1;
  config.slos.push_back(rule);

  ShardedRuntime runtime(config);
  runtime.run(workload);

  // The run itself was untouched by the breach...
  EXPECT_EQ(runtime.convergedCount(), workload.calls);
  EXPECT_EQ(runtime.cleanTeardownCount(), workload.calls);
  // ...but the watchdog latched it and the post-mortem landed on disk.
  ASSERT_NE(runtime.telemetry(), nullptr);
  EXPECT_TRUE(runtime.telemetry()->everBreached());
  EXPECT_FALSE(runtime.telemetry()->healthy());
  EXPECT_GE(runtime.telemetry()->sloDumps(), 1u);
  const std::string dump = runtime.telemetry()->lastDumpPath();
  ASSERT_FALSE(dump.empty());
  std::ifstream in(dump);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  EXPECT_NE(buffer.str().find("slo_breach:setup_p99"), std::string::npos);
  EXPECT_NE(buffer.str().find("\"metrics\""), std::string::npos);

  // The health verb reports the degradation.
  auto c = obs::OpsClient::connect("127.0.0.1", runtime.opsPort());
  ASSERT_NE(c, nullptr);
  auto health = c->request("health");
  ASSERT_TRUE(health.has_value());
  EXPECT_NE(health->body.find("health=degraded"), std::string::npos);
  EXPECT_NE(health->body.find("ever_breached=1"), std::string::npos);

  fs::remove_all(dir);
}

}  // namespace
}  // namespace cmc::load
