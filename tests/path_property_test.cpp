// Property tests: random interleavings of path actions must always drain to
// the path type's specified goal state (the testable core of the paper's
// Section V semantics), regardless of scheduling, chaos prefixes, or user
// mute perturbations along the way.
//
// Strategy per case: perform a bounded random walk over the enabled
// actions (deliveries, attaches, chaos sends, retries, mute modifies), then
// drain deterministically (deliver everything; fire pending retries a few
// rounds) and check the end state. This complements the exhaustive model
// checker with longer, deeper runs than its budgets allow.
#include <gtest/gtest.h>

#include "core/path.hpp"
#include "util/rng.hpp"

namespace cmc {
namespace {

using K = GoalKind;

struct PropertyCase {
  K left;
  K right;
  std::size_t flowlinks;
  std::uint64_t seed;
};

class PathRandomWalk : public ::testing::TestWithParam<PropertyCase> {
 protected:
  // Deterministic drain: deliver everything; fire retries between rounds so
  // recurrent paths can converge. Rounds are bounded: a close/open path
  // never stops retrying, and must still be quiescent between rounds.
  static void drain(PathSystem& path, int retry_rounds = 6) {
    path.run();
    for (int round = 0; round < retry_rounds; ++round) {
      path.fireRetry(PathEnd::left);
      path.fireRetry(PathEnd::right);
      path.run();
    }
  }
};

TEST_P(PathRandomWalk, RandomInterleavingDrainsToSpecifiedState) {
  const PropertyCase param = GetParam();
  PathSystem path(PathSystem::makeGoal(param.left, PathEnd::left),
                  PathSystem::makeGoal(param.right, PathEnd::right),
                  param.flowlinks, /*defer_attach=*/true);
  path.setChaosBudget(2);
  path.setModifyBudget(2);
  Rng rng(param.seed);

  // Random walk: up to 400 random actions (attaches included, so the walk
  // ends with goals engaged with overwhelming probability; force-attach
  // afterwards regardless).
  for (int step = 0; step < 400; ++step) {
    const auto actions = path.enabledActions();
    if (actions.empty()) break;
    path.apply(actions[rng.below(actions.size())]);
  }
  for (std::uint32_t p = 0; p < path.partyCount(); ++p) {
    if (!path.partyAttached(p)) {
      PathAction attach;
      attach.kind = PathAction::Kind::attach;
      attach.party = p;
      path.apply(attach);
    }
  }
  // Restore unmuted intents at both ends so bothFlowing is reachable, then
  // drain.
  drain(path);
  path.setMute(PathEnd::left, false, false);
  path.setMute(PathEnd::right, false, false);
  drain(path);

  ASSERT_TRUE(path.quiescent());
  const bool has_close = param.left == K::closeSlot || param.right == K::closeSlot;
  const bool has_open = param.left == K::openSlot || param.right == K::openSlot;
  if (has_close) {
    EXPECT_TRUE(path.bothClosed()) << "close end must win";
    EXPECT_FALSE(path.bothFlowing());
  } else if (has_open) {
    EXPECT_TRUE(path.bothFlowing())
        << "open/hold paths must recur to bothFlowing";
    EXPECT_TRUE(path.mediaEnabled(PathEnd::left));
    EXPECT_TRUE(path.mediaEnabled(PathEnd::right));
  } else {
    // hold/hold: either rest state is acceptable, but it must be one of
    // them, cleanly.
    EXPECT_TRUE(path.bothClosed() || path.bothFlowing());
  }
  // Safety shape: every endpoint slot closed or flowing.
  for (PathEnd end : {PathEnd::left, PathEnd::right}) {
    const auto state = path.endpointSlot(end).state();
    EXPECT_TRUE(state == ProtocolState::closed || state == ProtocolState::flowing);
  }
}

std::vector<PropertyCase> makeCases() {
  std::vector<PropertyCase> cases;
  const std::pair<K, K> types[] = {
      {K::closeSlot, K::closeSlot}, {K::closeSlot, K::holdSlot},
      {K::closeSlot, K::openSlot},  {K::openSlot, K::openSlot},
      {K::openSlot, K::holdSlot},   {K::holdSlot, K::holdSlot},
  };
  for (auto [l, r] : types) {
    for (std::size_t flowlinks : {std::size_t{0}, std::size_t{1}, std::size_t{3}}) {
      for (std::uint64_t seed = 1; seed <= 5; ++seed) {
        cases.push_back(PropertyCase{l, r, flowlinks, seed * 7919});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomWalks, PathRandomWalk, ::testing::ValuesIn(makeCases()),
    [](const ::testing::TestParamInfo<PropertyCase>& info) {
      const auto& p = info.param;
      return std::string(toString(p.left)) + "_" + std::string(toString(p.right)) +
             "_links" + std::to_string(p.flowlinks) + "_seed" +
             std::to_string(p.seed);
    });

}  // namespace
}  // namespace cmc
