// Fault-injection property suite (docs/FAULTS.md).
//
// Three layers of the same claim — the signaling protocol self-stabilizes
// once fault injection ceases:
//
//   1. PathSystem random walks: seeded schedules of drops, duplicates,
//      chaos sends, and mutes against all six path types; after the walk
//      the stabilization oracle (alternate stabilize()/run() until dry)
//      must land every path in its Section V rest state.
//   2. Simulator runs: a call established under a FaultPlan (25% drop,
//      duplicates, reordering, a box crash) must converge to two-way
//      media, and a fixed (sim seed, fault seed) pair must replay to a
//      byte-identical trace.
//   3. Model checker: the paper's verification table re-checked with a
//      fault budget — every temporal verdict must survive adversarial
//      message faults.
//
// Every failure prints the seed that produced it; set FAULT_SEED_LOG to a
// path to also append failing seeds there (the CI fault-fuzz job uploads
// that file as an artifact). FAULT_FUZZ_SCHEDULES scales the number of
// seeds per configuration (default 5).
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <string>

#include "core/path.hpp"
#include "endpoints/user_device.hpp"
#include "mc/verification.hpp"
#include "obs/trace.hpp"
#include "sim/simulator.hpp"
#include "util/rng.hpp"

namespace cmc {
namespace {

using namespace literals;
using K = GoalKind;

std::uint64_t schedulesPerConfig() {
  if (const char* env = std::getenv("FAULT_FUZZ_SCHEDULES")) {
    const long v = std::atol(env);
    if (v > 0) return static_cast<std::uint64_t>(v);
  }
  return 5;
}

void logFailingSeed(const std::string& line) {
  if (const char* path = std::getenv("FAULT_SEED_LOG")) {
    std::ofstream out(path, std::ios::app);
    out << line << '\n';
  }
}

// ------------------------------------------------- PathSystem random walks

struct FaultCase {
  K left;
  K right;
  std::size_t flowlinks;
  std::uint64_t seed;
};

class FaultRandomWalk : public ::testing::TestWithParam<FaultCase> {
 protected:
  // The stabilization oracle: deliver everything, then let every party
  // re-assert unconverged goals, until a sweep emits nothing. Bounded —
  // a protocol that needs more than 32 sweeps is livelocked, not late.
  static bool stabilizeUntilDry(PathSystem& path) {
    for (int sweep = 0; sweep < 32; ++sweep) {
      path.run();
      if (!path.stabilize()) {
        path.run();
        return true;
      }
    }
    return false;
  }

  static bool drainWithRetries(PathSystem& path, int rounds = 6) {
    if (!stabilizeUntilDry(path)) return false;
    for (int round = 0; round < rounds; ++round) {
      path.fireRetry(PathEnd::left);
      path.fireRetry(PathEnd::right);
      if (!stabilizeUntilDry(path)) return false;
    }
    return true;
  }
};

TEST_P(FaultRandomWalk, SelfStabilizesAfterInjectionCeases) {
  const FaultCase param = GetParam();
  SCOPED_TRACE("seed=" + std::to_string(param.seed));

  PathSystem path(PathSystem::makeGoal(param.left, PathEnd::left),
                  PathSystem::makeGoal(param.right, PathEnd::right),
                  param.flowlinks, /*defer_attach=*/true);
  path.setChaosBudget(1);
  path.setModifyBudget(1);
  path.setFaultBudget(8);
  path.enableStabilization(true);
  Rng rng(param.seed);

  // Random walk with a drop bias: when fault actions are enabled, pick one
  // at least 25% of the time, so well over 20% of in-flight signals get
  // dropped or duplicated while the budget lasts.
  for (int step = 0; step < 400; ++step) {
    const auto actions = path.enabledActions();
    if (actions.empty()) break;
    std::vector<PathAction> faults;
    for (const auto& a : actions) {
      if (a.kind == PathAction::Kind::dropHead ||
          a.kind == PathAction::Kind::dupHead) {
        faults.push_back(a);
      }
    }
    if (!faults.empty() && rng.chance(0.25)) {
      path.apply(faults[rng.below(faults.size())]);
    } else {
      path.apply(actions[rng.below(actions.size())]);
    }
  }
  for (std::uint32_t p = 0; p < path.partyCount(); ++p) {
    if (!path.partyAttached(p)) {
      PathAction attach;
      attach.kind = PathAction::Kind::attach;
      attach.party = p;
      path.apply(attach);
    }
  }

  // Injection has ceased (walk over; remaining budget unused from here on).
  // Unmute so bothFlowing is reachable, then run the oracle.
  bool dry = drainWithRetries(path);
  path.setMute(PathEnd::left, false, false);
  path.setMute(PathEnd::right, false, false);
  dry = drainWithRetries(path) && dry;
  EXPECT_TRUE(dry) << "stabilization sweeps did not run dry";
  ASSERT_TRUE(path.quiescent());

  const bool has_close = param.left == K::closeSlot || param.right == K::closeSlot;
  const bool has_open = param.left == K::openSlot || param.right == K::openSlot;
  if (has_close) {
    EXPECT_TRUE(path.bothClosed()) << "close end must win (<>[] bothClosed)";
    EXPECT_FALSE(path.bothFlowing());
  } else if (has_open) {
    EXPECT_TRUE(path.bothFlowing()) << "open/hold must recur ([]<> bothFlowing)";
    EXPECT_TRUE(path.mediaEnabled(PathEnd::left));
    EXPECT_TRUE(path.mediaEnabled(PathEnd::right));
  } else {
    EXPECT_TRUE(path.bothClosed() || path.bothFlowing());
  }
  for (PathEnd end : {PathEnd::left, PathEnd::right}) {
    const auto state = path.endpointSlot(end).state();
    EXPECT_TRUE(state == ProtocolState::closed || state == ProtocolState::flowing)
        << "endpoint slot stuck in " << toString(state);
  }

  if (::testing::Test::HasFailure()) {
    logFailingSeed("path " + std::string(toString(param.left)) + "/" +
                   std::string(toString(param.right)) + " flowlinks=" +
                   std::to_string(param.flowlinks) + " seed=" +
                   std::to_string(param.seed));
  }
}

std::vector<FaultCase> makeFaultCases() {
  std::vector<FaultCase> cases;
  const std::pair<K, K> types[] = {
      {K::closeSlot, K::closeSlot}, {K::closeSlot, K::holdSlot},
      {K::closeSlot, K::openSlot},  {K::openSlot, K::openSlot},
      {K::openSlot, K::holdSlot},   {K::holdSlot, K::holdSlot},
  };
  const std::uint64_t schedules = schedulesPerConfig();
  for (auto [l, r] : types) {
    for (std::size_t flowlinks : {std::size_t{0}, std::size_t{1}}) {
      for (std::uint64_t seed = 1; seed <= schedules; ++seed) {
        cases.push_back(FaultCase{l, r, flowlinks, seed * 104729});
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    FaultSchedules, FaultRandomWalk, ::testing::ValuesIn(makeFaultCases()),
    [](const ::testing::TestParamInfo<FaultCase>& info) {
      const auto& p = info.param;
      return std::string(toString(p.left)) + "_" + std::string(toString(p.right)) +
             "_links" + std::to_string(p.flowlinks) + "_seed" +
             std::to_string(p.seed);
    });

// ------------------------------------------------------- simulator layer

struct SimRunResult {
  bool in_call = false;
  bool hears_both = false;
  std::uint64_t dropped = 0;
  std::uint64_t crashes = 0;
  std::size_t probes_converged = 0;
  std::string trace_json;
};

SimRunResult runFaultedCall(std::uint64_t sim_seed, std::uint64_t fault_seed,
                            bool with_crash) {
  obs::TraceRecorder trace;
  Simulator sim(TimingModel::paperDefaults(), sim_seed);
  sim.attachTrace(&trace);
  auto& media = sim.mediaNetwork();
  auto& a = sim.addBox<UserDeviceBox>("A", media, sim.loop(),
                                      MediaAddress::parse("10.0.0.1", 5000));
  auto& b = sim.addBox<UserDeviceBox>("B", media, sim.loop(),
                                      MediaAddress::parse("10.0.0.2", 5000));

  FaultSpec spec;
  spec.drop_rate = 0.25;
  spec.duplicate_rate = 0.10;
  spec.reorder_rate = 0.10;
  spec.active_for = 4_s;
  FaultPlan plan(fault_seed, spec);
  if (with_crash) plan.addCrash(CrashEvent{"B", SimTime{} + 1500_ms, 800_ms});
  sim.installFaultPlan(&plan);

  sim.inject("A",
             [](Box& box) { static_cast<UserDeviceBox&>(box).placeCall("B"); });
  sim.armStabilizationProbe("call", [&] { return a.inCall() && b.inCall(); });
  sim.run(60_s);

  SimRunResult result;
  result.in_call = a.inCall() && b.inCall();
  result.hears_both =
      a.media().hears(b.media().id()) && b.media().hears(a.media().id());
  result.dropped = plan.counters().dropped;
  result.crashes = plan.counters().crashes;
  result.probes_converged = sim.probes().convergedCount();
  sim.attachTrace(nullptr);
  result.trace_json = trace.chromeTraceJson();
  return result;
}

TEST(SimFaultPlan, CallStabilizesUnderDropDupReorder) {
  const std::uint64_t schedules = schedulesPerConfig();
  for (std::uint64_t seed = 1; seed <= schedules; ++seed) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    const SimRunResult r = runFaultedCall(42, seed, /*with_crash=*/false);
    EXPECT_TRUE(r.in_call) << "call did not stabilize";
    EXPECT_TRUE(r.hears_both) << "media did not converge to two-way";
    EXPECT_EQ(r.probes_converged, 1u) << "stabilization probe never fired";
    if (::testing::Test::HasFailure()) {
      logFailingSeed("sim drop seed=" + std::to_string(seed));
    }
  }
}

TEST(SimFaultPlan, CallSurvivesCrashAndRestart) {
  const std::uint64_t schedules = schedulesPerConfig();
  for (std::uint64_t seed = 1; seed <= schedules; ++seed) {
    SCOPED_TRACE("fault seed " + std::to_string(seed));
    const SimRunResult r = runFaultedCall(42, seed, /*with_crash=*/true);
    EXPECT_EQ(r.crashes, 1u);
    EXPECT_TRUE(r.in_call) << "call did not re-establish after crash";
    EXPECT_TRUE(r.hears_both);
    if (::testing::Test::HasFailure()) {
      logFailingSeed("sim crash seed=" + std::to_string(seed));
    }
  }
}

TEST(SimFaultPlan, FixedSeedsReplayByteIdentically) {
  const SimRunResult r1 = runFaultedCall(42, 7, /*with_crash=*/true);
  const SimRunResult r2 = runFaultedCall(42, 7, /*with_crash=*/true);
  EXPECT_GT(r1.dropped, 0u) << "schedule injected nothing; test is vacuous";
  EXPECT_EQ(r1.trace_json, r2.trace_json)
      << "same (sim seed, fault seed) must replay the exact same trace";
}

TEST(SimFaultPlan, TunnelOverrideConfinesFaultsToOneDirection) {
  Simulator sim(TimingModel::paperDefaults(), 42);
  auto& media = sim.mediaNetwork();
  sim.addBox<UserDeviceBox>("A", media, sim.loop(),
                            MediaAddress::parse("10.0.0.1", 5000));
  sim.addBox<UserDeviceBox>("B", media, sim.loop(),
                            MediaAddress::parse("10.0.0.2", 5000));
  FaultSpec quiet;  // default: no faults anywhere
  FaultPlan plan(3, quiet);
  FaultSpec lossy;
  lossy.drop_rate = 1.0;
  lossy.active_for = 600_ms;
  plan.tunnelOverride("A", "B", lossy);
  sim.installFaultPlan(&plan);
  sim.inject("A",
             [](Box& box) { static_cast<UserDeviceBox&>(box).placeCall("B"); });
  sim.runFor(600_ms);
  EXPECT_GT(plan.counters().dropped, 0u) << "override direction saw no drops";
  // After the injection window the dropped opens are re-asserted.
  sim.runFor(10_s);
  auto& a = static_cast<UserDeviceBox&>(sim.box("A"));
  EXPECT_TRUE(a.inCall());
}

// ---------------------------------------------------- model-checker layer

TEST(McFaultColumn, VerificationTableHoldsUnderFaultBudget) {
  ExploreLimits limits;
  limits.chaos_budget = 0;
  limits.modify_budget = 0;
  limits.fault_budget = 2;
  limits.max_states = 500'000;
  for (const auto& config : paperVerificationSuite()) {
    const VerificationOutcome outcome = verifyPath(config, limits);
    EXPECT_TRUE(outcome.ok())
        << toString(config.left) << "/" << toString(config.right)
        << " flowlinks=" << config.flowlinks << ": " << outcome.failure;
    EXPECT_FALSE(outcome.truncated);
  }
}

TEST(McFaultColumn, FaultBudgetEnlargesTheStateSpace) {
  ExploreLimits base;
  base.chaos_budget = 0;
  base.modify_budget = 0;
  base.max_states = 500'000;
  ExploreLimits faulty = base;
  faulty.fault_budget = 2;
  const auto clean = explorePath(K::openSlot, K::openSlot, 1, base);
  const auto injected = explorePath(K::openSlot, K::openSlot, 1, faulty);
  EXPECT_GT(injected.states(), clean.states())
      << "fault actions added no reachable states; injection is not wired";
}

}  // namespace
}  // namespace cmc
