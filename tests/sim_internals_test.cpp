// Tests for simulator internals: serial-server queueing (the paper's boxes
// process one stimulus at a time at cost c), network jitter, the delivery
// hook, and injection ordering.
#include <gtest/gtest.h>

#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

namespace cmc {
namespace {

using namespace literals;

TEST(SimInternals, StimuliSerializeOnABox) {
  // Two stimuli injected at t=0 on the same box: the box is a serial
  // server with processing cost c = 20 ms, so they complete at 20 and 40.
  Simulator sim(TimingModel::paperDefaults(), 1);
  sim.addBox<Box>("box");
  std::vector<double> completions;
  sim.inject("box", [&](Box&) { completions.push_back(0); });
  sim.inject("box", [&](Box&) { completions.push_back(0); });
  sim.runFor(1_s);
  // Completion times are observable through the loop clock at callback
  // time; re-run with capture:
  Simulator sim2(TimingModel::paperDefaults(), 1);
  sim2.addBox<Box>("box");
  std::vector<double> at;
  sim2.inject("box", [&](Box&) { at.push_back(sim2.now().millis()); });
  sim2.inject("box", [&](Box&) { at.push_back(sim2.now().millis()); });
  sim2.runFor(1_s);
  ASSERT_EQ(at.size(), 2u);
  EXPECT_DOUBLE_EQ(at[0], 20.0);
  EXPECT_DOUBLE_EQ(at[1], 40.0);
}

TEST(SimInternals, DifferentBoxesRunInParallel) {
  Simulator sim(TimingModel::paperDefaults(), 1);
  sim.addBox<Box>("x");
  sim.addBox<Box>("y");
  std::vector<double> at;
  sim.inject("x", [&](Box&) { at.push_back(sim.now().millis()); });
  sim.inject("y", [&](Box&) { at.push_back(sim.now().millis()); });
  sim.runFor(1_s);
  ASSERT_EQ(at.size(), 2u);
  EXPECT_DOUBLE_EQ(at[0], 20.0);
  EXPECT_DOUBLE_EQ(at[1], 20.0);  // not serialized across boxes
}

TEST(SimInternals, SignalHookSeesDeliveries) {
  Simulator sim(TimingModel::paperDefaults(), 1);
  sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.9.1.1", 5000));
  sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.9.1.2", 5000));
  std::vector<std::string> kinds;
  sim.onSignalDelivered = [&](const std::string& from, const std::string& to,
                              const Signal& signal, SimTime) {
    kinds.push_back(std::string(from) + ">" + to + ":" +
                    std::string(toString(kindOf(signal))));
  };
  sim.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
  sim.runFor(2_s);
  ASSERT_GE(kinds.size(), 4u);
  EXPECT_EQ(kinds[0], "A>B:open");
  EXPECT_EQ(kinds[1], "B>A:oack");
  EXPECT_EQ(kinds[2], "B>A:select");
  EXPECT_EQ(kinds[3], "A>B:select");
  EXPECT_EQ(sim.signalsDelivered(), kinds.size());
}

TEST(SimInternals, JitterSpreadsDeliveries) {
  TimingModel timing = TimingModel::paperDefaults();
  timing.network_jitter = 0.5;
  Simulator sim(timing, 9);
  sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.9.1.1", 5000));
  sim.addBox<UserDeviceBox>("B", sim.mediaNetwork(), sim.loop(),
                            MediaAddress::parse("10.9.1.2", 5000));
  std::vector<double> at;
  sim.onSignalDelivered = [&](const std::string&, const std::string&,
                              const Signal&, SimTime t) {
    at.push_back(t.millis());
  };
  sim.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("B"); });
  sim.runFor(2_s);
  ASSERT_GE(at.size(), 2u);
  // The open leaves when the inject stimulus completes (t = c = 20 ms) and
  // arrives n later; with +/-50% jitter n is in [17, 51] ms.
  EXPECT_GE(at[0], 20.0 + 17.0 - 0.001);
  EXPECT_LE(at[0], 20.0 + 51.0 + 0.001);
  // The call still establishes.
  auto& a = static_cast<UserDeviceBox&>(sim.box("A"));
  EXPECT_TRUE(a.inCall());
}

TEST(SimInternals, ConnectIsImmediatelyUsable) {
  Simulator sim(TimingModel::paperDefaults(), 1);
  auto& a = sim.addBox<UserDeviceBox>("A", sim.mediaNetwork(), sim.loop(),
                                      MediaAddress::parse("10.9.1.1", 5000));
  sim.addBox<Box>("hub");
  const ChannelId ch = sim.connect("A", "hub");
  EXPECT_TRUE(a.hasChannel(ch));
  EXPECT_TRUE(sim.box("hub").hasChannel(ch));
}

TEST(SimInternals, DuplicateBoxNameThrows) {
  Simulator sim;
  sim.addBox<Box>("same");
  EXPECT_THROW(sim.addBox<Box>("same"), std::logic_error);
}

TEST(SimInternals, UnknownBoxLookupThrows) {
  Simulator sim;
  EXPECT_THROW(sim.box("ghost"), std::logic_error);
}

}  // namespace
}  // namespace cmc
