// Unit tests for the Box runtime (paper Section VII): channel-end wiring,
// the Maps object (goal bindings), output draining, retry pacing, and
// teardown behavior — driven directly, without the simulator.
#include <gtest/gtest.h>

#include "core/box.hpp"

namespace cmc {
namespace {

MediaIntent phone() {
  return MediaIntent::endpoint(MediaAddress::parse("10.0.0.1", 5000),
                               {Codec::g711u});
}

Descriptor remote(std::uint64_t id) {
  const Codec codecs[] = {Codec::g711u};
  return makeDescriptor(DescriptorId{id}, MediaAddress::parse("10.0.9.9", 5900),
                        codecs, false);
}

class BoxFixture : public ::testing::Test {
 protected:
  Box box_{BoxId{1}, "box"};
};

TEST_F(BoxFixture, AddChannelEndCreatesSlots) {
  auto slots = box_.addChannelEnd(ChannelId{1}, 3, true, "", "peer");
  ASSERT_EQ(slots.size(), 3u);
  EXPECT_TRUE(box_.hasChannel(ChannelId{1}));
  EXPECT_EQ(box_.slotsOf(ChannelId{1}), slots);
  EXPECT_EQ(box_.channelOf(slots[1]), ChannelId{1});
  for (SlotId s : slots) {
    EXPECT_EQ(box_.slotState(s), ProtocolState::closed);
    EXPECT_TRUE(box_.slot(s).channelInitiator());
  }
}

TEST_F(BoxFixture, SetGoalAttachesAndEmits) {
  auto slots = box_.addChannelEnd(ChannelId{1}, 1, true, "", "peer");
  box_.setGoal(slots[0], OpenSlotGoal{Medium::audio, phone(), DescriptorFactory{1}});
  auto out = box_.drainOutput();
  ASSERT_EQ(out.tunnel.size(), 1u);
  EXPECT_EQ(kindOf(out.tunnel[0].signal), SignalKind::open);
  EXPECT_EQ(box_.goalKind(slots[0]), GoalKind::openSlot);
}

TEST_F(BoxFixture, LinkSlotsSamePairIsIdempotent) {
  auto s1 = box_.addChannelEnd(ChannelId{1}, 1, true, "", "x");
  auto s2 = box_.addChannelEnd(ChannelId{2}, 1, true, "", "y");
  box_.linkSlots(s1[0], s2[0]);
  EXPECT_EQ(box_.goalKind(s1[0]), GoalKind::flowLink);
  // Re-linking the same (even reversed) pair must keep the same object:
  // no goal churn, no new signals.
  (void)box_.drainOutput();
  box_.linkSlots(s2[0], s1[0]);
  EXPECT_TRUE(box_.drainOutput().empty());
}

TEST_F(BoxFixture, RelinkDifferentPairReplaces) {
  auto s1 = box_.addChannelEnd(ChannelId{1}, 1, true, "", "x");
  auto s2 = box_.addChannelEnd(ChannelId{2}, 1, true, "", "y");
  auto s3 = box_.addChannelEnd(ChannelId{3}, 1, true, "", "z");
  box_.linkSlots(s1[0], s2[0]);
  box_.linkSlots(s1[0], s3[0]);
  EXPECT_EQ(box_.goalKind(s1[0]), GoalKind::flowLink);
  EXPECT_EQ(box_.goalKind(s3[0]), GoalKind::flowLink);
  // s2 lost its goal when the old link dissolved.
  EXPECT_EQ(box_.goalKind(s2[0]), std::nullopt);
}

TEST_F(BoxFixture, DeliverTunnelRoutesToGoal) {
  auto slots = box_.addChannelEnd(ChannelId{1}, 1, false, "", "peer");
  box_.setGoal(slots[0], HoldSlotGoal{phone(), DescriptorFactory{1}});
  (void)box_.drainOutput();
  box_.deliverTunnel(slots[0], OpenSignal{Medium::audio, remote(1)});
  auto out = box_.drainOutput();
  ASSERT_EQ(out.tunnel.size(), 2u);  // oack + select
  EXPECT_EQ(kindOf(out.tunnel[0].signal), SignalKind::oack);
  EXPECT_EQ(box_.slotState(slots[0]), ProtocolState::flowing);
}

TEST_F(BoxFixture, DeliverToUnknownSlotIsSafe) {
  box_.deliverTunnel(SlotId{999}, CloseSignal{});
  EXPECT_TRUE(box_.drainOutput().empty());
}

TEST_F(BoxFixture, UnboundSlotAbsorbsButAutoReplies) {
  auto slots = box_.addChannelEnd(ChannelId{1}, 1, false, "", "peer");
  // No goal bound: an open is absorbed (protocol state advances)...
  box_.deliverTunnel(slots[0], OpenSignal{Medium::audio, remote(1)});
  EXPECT_EQ(box_.slotState(slots[0]), ProtocolState::opened);
  EXPECT_TRUE(box_.drainOutput().tunnel.empty());
  // ...but mandatory protocol replies still go out.
  box_.deliverTunnel(slots[0], CloseSignal{});
  auto out = box_.drainOutput();
  ASSERT_EQ(out.tunnel.size(), 1u);
  EXPECT_EQ(kindOf(out.tunnel[0].signal), SignalKind::closeack);
}

TEST_F(BoxFixture, RetryTimerRequestedOncePerPendingRetry) {
  auto slots = box_.addChannelEnd(ChannelId{1}, 1, true, "", "peer");
  box_.setGoal(slots[0], OpenSlotGoal{Medium::audio, phone(), DescriptorFactory{1}});
  (void)box_.drainOutput();
  box_.deliverTunnel(slots[0], CloseSignal{});  // rejected -> retry pending
  auto out = box_.drainOutput();
  ASSERT_EQ(out.timers.size(), 1u);
  EXPECT_EQ(out.timers[0].tag, Box::kRetryTimerTag);
  EXPECT_TRUE(box_.hasPendingRetries());
  // The retry timer fires: the open goes out again, and because that open
  // clears the pending state, no new timer is requested.
  box_.fireTimer(Box::kRetryTimerTag);
  auto out2 = box_.drainOutput();
  ASSERT_EQ(out2.tunnel.size(), 1u);
  EXPECT_EQ(kindOf(out2.tunnel[0].signal), SignalKind::open);
  EXPECT_TRUE(out2.timers.empty());
  EXPECT_FALSE(box_.hasPendingRetries());
}

TEST_F(BoxFixture, RemoveChannelDropsSlotsAndGoals) {
  auto s1 = box_.addChannelEnd(ChannelId{1}, 1, true, "", "x");
  auto s2 = box_.addChannelEnd(ChannelId{2}, 1, true, "", "y");
  box_.linkSlots(s1[0], s2[0]);
  box_.removeChannel(ChannelId{1});
  EXPECT_FALSE(box_.hasChannel(ChannelId{1}));
  // The flowlink spanned both channels; it dies with either one.
  EXPECT_EQ(box_.goalKind(s2[0]), std::nullopt);
  EXPECT_THROW((void)box_.slot(s1[0]), std::logic_error);
}

TEST_F(BoxFixture, TeardownMetaRemovesChannel) {
  box_.addChannelEnd(ChannelId{1}, 1, false, "", "peer");
  box_.deliverMeta(ChannelId{1}, MetaSignal{MetaKind::teardown, "", ""});
  EXPECT_FALSE(box_.hasChannel(ChannelId{1}));
}

TEST_F(BoxFixture, SetSlotMuteFlowsThroughGoal) {
  auto slots = box_.addChannelEnd(ChannelId{1}, 1, false, "", "peer");
  box_.setGoal(slots[0], HoldSlotGoal{phone(), DescriptorFactory{1}});
  box_.deliverTunnel(slots[0], OpenSignal{Medium::audio, remote(1)});
  (void)box_.drainOutput();
  box_.setSlotMute(slots[0], true, false);
  auto out = box_.drainOutput();
  ASSERT_EQ(out.tunnel.size(), 1u);
  const auto& describe = std::get<DescribeSignal>(out.tunnel[0].signal);
  EXPECT_TRUE(describe.descriptor.isNoMedia());
}

TEST_F(BoxFixture, DrainOutputIsDestructive) {
  auto slots = box_.addChannelEnd(ChannelId{1}, 1, true, "", "peer");
  box_.setGoal(slots[0], OpenSlotGoal{Medium::audio, phone(), DescriptorFactory{1}});
  EXPECT_FALSE(box_.drainOutput().empty());
  EXPECT_TRUE(box_.drainOutput().empty());
}

TEST_F(BoxFixture, ClearGoalDetaches) {
  auto slots = box_.addChannelEnd(ChannelId{1}, 1, true, "", "peer");
  box_.setGoal(slots[0], CloseSlotGoal{});
  box_.clearGoal(slots[0]);
  EXPECT_EQ(box_.goalKind(slots[0]), std::nullopt);
}

}  // namespace
}  // namespace cmc
