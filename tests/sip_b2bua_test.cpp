// Additional SIP-baseline tests: the B2BUA's transparent forwarding role,
// BYE handling, unlinked dialogs, and message formatting.
#include <gtest/gtest.h>

#include <sstream>

#include "sip/agent.hpp"
#include "sip/b2bua.hpp"

namespace cmc::sip {
namespace {

using namespace cmc::literals;

class B2buaFixture : public ::testing::Test {
 protected:
  B2buaFixture()
      : net_(loop_, TimingModel::paperDefaults(), 3),
        x_("X", net_, MediaAddress::parse("10.0.0.1", 5000), {Codec::g711u}),
        y_("Y", net_, MediaAddress::parse("10.0.0.2", 5000), {Codec::g711u}),
        mid_("mid", net_) {
    dialog_x_ = net_.createDialog("X", "mid");
    dialog_y_ = net_.createDialog("mid", "Y");
    mid_.linkDialogs(dialog_x_, dialog_y_);
  }

  EventLoop loop_;
  SipNetwork net_;
  SipUa x_;
  SipUa y_;
  SipB2bua mid_;
  std::uint64_t dialog_x_ = 0, dialog_y_ = 0;
};

TEST_F(B2buaFixture, ForwardsReinviteTransparently) {
  x_.reinvite(dialog_x_);
  loop_.runUntilIdle();
  EXPECT_TRUE(x_.mediaReadyAt().has_value());
  EXPECT_TRUE(y_.mediaReadyAt().has_value());
  EXPECT_EQ(x_.negotiationsCompleted(), 1);
  EXPECT_EQ(y_.negotiationsCompleted(), 1);
}

TEST_F(B2buaFixture, ForwardsFromEitherSide) {
  y_.reinvite(dialog_y_);
  loop_.runUntilIdle();
  EXPECT_TRUE(x_.mediaReadyAt().has_value());
  EXPECT_TRUE(y_.mediaReadyAt().has_value());
}

TEST_F(B2buaFixture, SequentialReinvitesBothComplete) {
  x_.reinvite(dialog_x_);
  loop_.runUntilIdle();
  y_.reinvite(dialog_y_);
  loop_.runUntilIdle();
  EXPECT_EQ(x_.negotiationsCompleted(), 2);
  EXPECT_EQ(y_.negotiationsCompleted(), 2);
  EXPECT_EQ(x_.glaresSeen() + y_.glaresSeen(), 0);
}

TEST_F(B2buaFixture, UnlinkedDialogInviteIsRefused) {
  EventLoop loop;
  SipNetwork net(loop, TimingModel::paperDefaults(), 5);
  SipUa a("A", net, MediaAddress::parse("10.0.0.7", 5000), {Codec::g711u});
  SipB2bua lonely("lonely", net);
  const auto dialog = net.createDialog("A", "lonely");
  // No linked dialog behind the B2BUA: the invite bounces (491) and the UA
  // retries forever; after the first bounce the UA has seen no media.
  a.reinvite(dialog);
  loop.runUntil(SimTime{} + 1_s);
  EXPECT_FALSE(a.mediaReadyAt().has_value());
}

TEST_F(B2buaFixture, RelinkDoneTimestampRecorded) {
  SipUa z("Z", net_, MediaAddress::parse("10.0.0.3", 5000), {Codec::g711u});
  const auto dialog_z = net_.createDialog("mid", "Z");
  mid_.linkDialogs(dialog_z, dialog_x_);
  mid_.relink(dialog_z, dialog_x_);
  loop_.runUntilIdle();
  EXPECT_TRUE(mid_.relinkDone());
  ASSERT_TRUE(mid_.relinkDoneAt().has_value());
  EXPECT_GT(mid_.relinkDoneAt()->millis(), 0.0);
  EXPECT_EQ(mid_.retries(), 0);
}

TEST(SipMessageFormat, StreamOutput) {
  SipMessage invite = SipMessage::make(
      SipRequest{Method::invite, 7, 3,
                 Sdp{Sdp::Kind::offer,
                     {MediaLine{Medium::audio,
                                MediaAddress::parse("10.0.0.1", 5000),
                                {Codec::g711u}}}}});
  std::ostringstream oss;
  oss << invite;
  EXPECT_NE(oss.str().find("INVITE"), std::string::npos);
  EXPECT_NE(oss.str().find("offer"), std::string::npos);

  SipMessage failure =
      SipMessage::make(SipResponse{491, 7, 3, std::nullopt});
  std::ostringstream oss2;
  oss2 << failure;
  EXPECT_NE(oss2.str().find("491"), std::string::npos);
}

TEST(SipUaDirect, ByeIsAnswered) {
  EventLoop loop;
  SipNetwork net(loop, TimingModel::paperDefaults(), 5);
  SipUa a("A", net, MediaAddress::parse("10.0.0.7", 5000), {Codec::g711u});
  SipUa b("B", net, MediaAddress::parse("10.0.0.8", 5000), {Codec::g711u});
  const auto dialog = net.createDialog("A", "B");
  a.reinvite(dialog);
  loop.runUntilIdle();
  const auto before = net.messageCount();
  // BYE answered with 200 (no crash, one response).
  net.send("A", dialog, SipMessage::make(SipRequest{Method::bye, dialog, 9,
                                                    std::nullopt}));
  loop.runUntilIdle();
  EXPECT_EQ(net.messageCount(), before + 2);  // BYE + 200
}

}  // namespace
}  // namespace cmc::sip
