// Unit tests for the flowLink primitive (paper Section VII): state matching
// over live/dead superstates, descriptor caching, up-to-date bookkeeping,
// and selector freshness filtering.
//
// The tests drive a FlowLink directly over two SlotEndpoints, playing the
// role of both far ends by hand. End-to-end behavior through whole paths is
// covered in path_test.cpp.
#include <gtest/gtest.h>

#include "core/flowlink.hpp"

namespace cmc {
namespace {

Descriptor desc(std::uint64_t id, bool muted = false) {
  const Codec codecs[] = {Codec::g711u, Codec::g726};
  return makeDescriptor(DescriptorId{id},
                        MediaAddress::parse("10.0.0.1", 5000),
                        muted ? std::span<const Codec>{} : std::span<const Codec>{codecs},
                        muted);
}

Selector sel(std::uint64_t answers, Codec codec = Codec::g711u) {
  return Selector{DescriptorId{answers}, MediaAddress::parse("10.0.0.2", 5002), codec};
}

class FlowLinkTest : public ::testing::Test {
 protected:
  // Slot 1 faces left (non-initiator of its channel), slot 2 faces right
  // (initiator), matching PathSystem's convention.
  SlotEndpoint s1_{SlotId{1}, false};
  SlotEndpoint s2_{SlotId{2}, true};
  FlowLink link_;

  Outbox attach() {
    Outbox out;
    link_.attach(s1_, s2_, out);
    return out;
  }

  Outbox deliver(SlotEndpoint& self, SlotEndpoint& other, const Signal& signal) {
    Outbox out;
    auto result = self.deliver(signal);
    link_.onEvent(self, other, result.event, signal, out);
    return out;
  }

  static const Signal& only(const Outbox& out) {
    EXPECT_EQ(out.size(), 1u);
    return out.signals().front().signal;
  }
};

TEST_F(FlowLinkTest, BothClosedAttachIsIdle) {
  auto out = attach();
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(FlowLink::matched(s1_, s2_));  // both closed is a goal state
}

TEST_F(FlowLinkTest, OpenPropagatesThroughWithSameDescriptor) {
  attach();
  // Far-left opens: the flowlink must extend the request to the right with
  // the *same* descriptor (transparency).
  auto out = deliver(s1_, s2_, OpenSignal{Medium::audio, desc(100)});
  const auto& open = std::get<OpenSignal>(only(out));
  EXPECT_EQ(open.descriptor.id, DescriptorId{100});
  EXPECT_EQ(open.medium, Medium::audio);
  EXPECT_EQ(s1_.state(), ProtocolState::opened);  // not yet accepted!
  EXPECT_EQ(s2_.state(), ProtocolState::opening);
}

TEST_F(FlowLinkTest, OackPropagatesBackAndCompletesMatch) {
  attach();
  (void)deliver(s1_, s2_, OpenSignal{Medium::audio, desc(100)});
  auto out = deliver(s2_, s1_, OackSignal{desc(200)});
  const auto& oack = std::get<OackSignal>(only(out));
  EXPECT_EQ(oack.descriptor.id, DescriptorId{200});
  EXPECT_EQ(s1_.state(), ProtocolState::flowing);
  EXPECT_EQ(s2_.state(), ProtocolState::flowing);
  EXPECT_TRUE(FlowLink::matched(s1_, s2_));
  EXPECT_TRUE(link_.upToDate(s1_));
  EXPECT_TRUE(link_.upToDate(s2_));
}

TEST_F(FlowLinkTest, FreshSelectorsForwardedBothWays) {
  attach();
  (void)deliver(s1_, s2_, OpenSignal{Medium::audio, desc(100)});
  (void)deliver(s2_, s1_, OackSignal{desc(200)});
  // Far-right answers descriptor 100 (forwarded in our open).
  auto out1 = deliver(s2_, s1_, SelectSignal{sel(100)});
  EXPECT_EQ(std::get<SelectSignal>(only(out1)).selector.answersDescriptor,
            DescriptorId{100});
  // Far-left answers descriptor 200 (forwarded in our oack).
  auto out2 = deliver(s1_, s2_, SelectSignal{sel(200)});
  EXPECT_EQ(std::get<SelectSignal>(only(out2)).selector.answersDescriptor,
            DescriptorId{200});
}

TEST_F(FlowLinkTest, ObsoleteSelectorDiscarded) {
  attach();
  (void)deliver(s1_, s2_, OpenSignal{Medium::audio, desc(100)});
  (void)deliver(s2_, s1_, OackSignal{desc(200)});
  // A selector answering a stale descriptor id must not be forwarded
  // (Section VII: only fresh selectors matter).
  auto out = deliver(s2_, s1_, SelectSignal{sel(99)});
  EXPECT_TRUE(out.empty());
}

TEST_F(FlowLinkTest, DescribeForwardedAndInvalidatesUtd) {
  attach();
  (void)deliver(s1_, s2_, OpenSignal{Medium::audio, desc(100)});
  (void)deliver(s2_, s1_, OackSignal{desc(200)});
  // Far-left re-describes (e.g. mute change): forward right, new id governs.
  auto out = deliver(s1_, s2_, DescribeSignal{desc(101, true)});
  const auto& fwd = std::get<DescribeSignal>(only(out));
  EXPECT_EQ(fwd.descriptor.id, DescriptorId{101});
  EXPECT_TRUE(fwd.descriptor.isNoMedia());
  // Selector answering the old descriptor 100 is now obsolete.
  auto none = deliver(s2_, s1_, SelectSignal{sel(100)});
  EXPECT_TRUE(none.empty());
  // Selector answering 101 passes.
  auto ok = deliver(s2_, s1_, SelectSignal{sel(101, Codec::noMedia)});
  EXPECT_EQ(ok.size(), 1u);
}

TEST_F(FlowLinkTest, ClosePropagatesAndCompletes) {
  attach();
  (void)deliver(s1_, s2_, OpenSignal{Medium::audio, desc(100)});
  (void)deliver(s2_, s1_, OackSignal{desc(200)});
  // Far-left closes; flowlink must tear down the right side.
  auto out = deliver(s1_, s2_, CloseSignal{});
  EXPECT_EQ(kindOf(only(out)), SignalKind::close);
  EXPECT_EQ(s1_.state(), ProtocolState::closed);
  EXPECT_EQ(s2_.state(), ProtocolState::closing);
  EXPECT_TRUE(link_.closingMode());
  auto out2 = deliver(s2_, s1_, CloseAckSignal{});
  EXPECT_TRUE(out2.empty());
  EXPECT_TRUE(FlowLink::matched(s1_, s2_));  // both closed
}

TEST_F(FlowLinkTest, NoSpuriousReopenAfterTeardown) {
  attach();
  (void)deliver(s1_, s2_, OpenSignal{Medium::audio, desc(100)});
  (void)deliver(s2_, s1_, OackSignal{desc(200)});
  (void)deliver(s1_, s2_, CloseSignal{});
  (void)deliver(s2_, s1_, CloseAckSignal{});
  // Quiescent in both-closed: the flow bias must not resurrect the channel.
  EXPECT_EQ(s1_.state(), ProtocolState::closed);
  EXPECT_EQ(s2_.state(), ProtocolState::closed);
}

TEST_F(FlowLinkTest, ReopenAfterTeardownClearsClosingMode) {
  attach();
  (void)deliver(s1_, s2_, OpenSignal{Medium::audio, desc(100)});
  (void)deliver(s2_, s1_, OackSignal{desc(200)});
  (void)deliver(s1_, s2_, CloseSignal{});
  (void)deliver(s2_, s1_, CloseAckSignal{});
  auto out = deliver(s1_, s2_, OpenSignal{Medium::audio, desc(102)});
  EXPECT_EQ(kindOf(only(out)), SignalKind::open);
  EXPECT_FALSE(link_.closingMode());
}

TEST_F(FlowLinkTest, AttachFlowingAndClosedExtendsTowardFlow) {
  // The flow bias of Fig. 12: instantiating a flowlink on a flowing slot
  // and a closed slot opens the closed one.
  (void)s1_.deliver(OpenSignal{Medium::audio, desc(100)});
  (void)s1_.sendOack(desc(1));  // a previous goal accepted
  ASSERT_EQ(s1_.state(), ProtocolState::flowing);

  auto out = attach();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.signals()[0].slot, SlotId{2});
  const auto& open = std::get<OpenSignal>(out.signals()[0].signal);
  EXPECT_EQ(open.descriptor.id, DescriptorId{100});  // cached from s1
  EXPECT_EQ(s2_.state(), ProtocolState::opening);
}

TEST_F(FlowLinkTest, AttachFlowingAndClosedThenOackRedescribesLeft) {
  // The paper's worked example (Section VII case analysis): when the right
  // side completes, the left must learn the right's descriptor via describe.
  (void)s1_.deliver(OpenSignal{Medium::audio, desc(100)});
  (void)s1_.sendOack(desc(1));
  attach();
  auto out = deliver(s2_, s1_, OackSignal{desc(200)});
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.signals()[0].slot, SlotId{1});
  const auto& describe = std::get<DescribeSignal>(out.signals()[0].signal);
  EXPECT_EQ(describe.descriptor.id, DescriptorId{200});
  EXPECT_TRUE(link_.upToDate(s1_));
  EXPECT_TRUE(link_.upToDate(s2_));
}

TEST_F(FlowLinkTest, AttachFlowingAndOpeningWaitsThenDescribesBothWays) {
  // Paper Section VII "slot 1 flowing, slot 2 opening": the flowlink can do
  // nothing until the oack arrives, then must describe both ways because
  // the open that created slot 2's channel had nothing to do with this
  // flowlink (utd2 = false), and slot 1 has never seen slot 2's descriptor.
  (void)s1_.deliver(OpenSignal{Medium::audio, desc(100)});
  (void)s1_.sendOack(desc(1));
  (void)s2_.sendOpen(Medium::audio, desc(2));  // previous goal's open
  ASSERT_EQ(s2_.state(), ProtocolState::opening);

  auto out = attach();
  EXPECT_TRUE(out.empty());  // nothing legal to send yet

  auto out2 = deliver(s2_, s1_, OackSignal{desc(200)});
  ASSERT_EQ(out2.size(), 2u);
  // describe(desc of s2) to s1 and describe(desc of s1) to s2, order free.
  bool described_left = false, described_right = false;
  for (const auto& item : out2.signals()) {
    const auto& d = std::get<DescribeSignal>(item.signal);
    if (item.slot == SlotId{1}) {
      EXPECT_EQ(d.descriptor.id, DescriptorId{200});
      described_left = true;
    } else {
      EXPECT_EQ(d.descriptor.id, DescriptorId{100});
      described_right = true;
    }
  }
  EXPECT_TRUE(described_left);
  EXPECT_TRUE(described_right);
}

TEST_F(FlowLinkTest, AttachBothFlowingRedescribesBothWays) {
  // Click-to-Dial's final step: flowlinking two already-flowing slots must
  // reconfigure addresses/codecs so the two far ends talk to each other.
  (void)s1_.deliver(OpenSignal{Medium::audio, desc(100)});
  (void)s1_.sendOack(desc(1));
  (void)s2_.sendOpen(Medium::audio, desc(2));
  (void)s2_.deliver(OackSignal{desc(200)});

  auto out = attach();
  ASSERT_EQ(out.size(), 2u);
  for (const auto& item : out.signals()) {
    const auto& d = std::get<DescribeSignal>(item.signal);
    if (item.slot == SlotId{1}) {
      EXPECT_EQ(d.descriptor.id, DescriptorId{200});
    } else {
      EXPECT_EQ(d.descriptor.id, DescriptorId{100});
    }
  }
}

TEST_F(FlowLinkTest, AttachBothOpenedCrossAccepts) {
  (void)s1_.deliver(OpenSignal{Medium::audio, desc(100)});
  (void)s2_.deliver(OpenSignal{Medium::audio, desc(200)});
  auto out = attach();
  ASSERT_EQ(out.size(), 2u);
  for (const auto& item : out.signals()) {
    const auto& oack = std::get<OackSignal>(item.signal);
    if (item.slot == SlotId{1}) {
      EXPECT_EQ(oack.descriptor.id, DescriptorId{200});
    } else {
      EXPECT_EQ(oack.descriptor.id, DescriptorId{100});
    }
  }
  EXPECT_TRUE(FlowLink::matched(s1_, s2_));
}

TEST_F(FlowLinkTest, AttachOpenedAndClosedDefersAcceptUntilFarSideAnswers) {
  // Transparency: a flowlink must not accept an open until the other side
  // of the path has accepted (otherwise a closeslot beyond it could reject
  // a channel we already accepted).
  (void)s1_.deliver(OpenSignal{Medium::audio, desc(100)});
  auto out = attach();
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(kindOf(out.signals()[0].signal), SignalKind::open);
  EXPECT_EQ(s1_.state(), ProtocolState::opened);  // still unanswered
  // Far-right rejects; the reject must propagate.
  auto out2 = deliver(s2_, s1_, CloseSignal{});
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(kindOf(out2.signals()[0].signal), SignalKind::close);
  EXPECT_EQ(s1_.state(), ProtocolState::closing);
}

TEST_F(FlowLinkTest, MediumMismatchThrows) {
  (void)s1_.deliver(OpenSignal{Medium::audio, desc(100)});
  (void)s2_.deliver(OpenSignal{Medium::video, desc(200)});
  Outbox out;
  EXPECT_THROW(link_.attach(s1_, s2_, out), std::logic_error);
}

TEST_F(FlowLinkTest, RaceLossBecomesAcceptorAndCrossLinks) {
  // The flowlink opened s2 (its channel initiator side is s2? no: s2 is
  // initiator, so the far side loses races on channel 2). Here we test the
  // flowlink losing a race on s1, whose channel it did NOT initiate.
  (void)s2_.deliver(OpenSignal{Medium::audio, desc(200)});  // right side opened us
  auto out = attach();
  // Flow bias: extend toward the left with desc 200.
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(out.signals()[0].slot, SlotId{1});
  ASSERT_EQ(s1_.state(), ProtocolState::opening);
  // Far-left simultaneously opens; s1 is not the channel initiator, so the
  // flowlink backs off and treats the incoming open as governing.
  auto out2 = deliver(s1_, s2_, OpenSignal{Medium::audio, desc(100)});
  // It accepts immediately (the other slot, s2, is described), so s1 moves
  // straight through opened to flowing within the same event.
  EXPECT_EQ(s1_.state(), ProtocolState::flowing);
  ASSERT_EQ(out2.size(), 2u);
  EXPECT_EQ(kindOf(out2.signals()[0].signal), SignalKind::oack);
  // And must update s2 with the newly governing descriptor 100.
  const auto& oack = std::get<OackSignal>(out2.signals()[0].signal);
  EXPECT_EQ(oack.descriptor.id, DescriptorId{200});
  EXPECT_EQ(out2.signals()[1].slot, SlotId{2});
}

}  // namespace
}  // namespace cmc
