// Unit tests for the single-slot goal primitives (paper Section IV-A),
// driven directly against a SlotEndpoint.
#include <gtest/gtest.h>

#include "core/goal.hpp"

namespace cmc {
namespace {

MediaIntent phoneIntent() {
  return MediaIntent::endpoint(MediaAddress::parse("10.0.0.1", 5000),
                               {Codec::g711u, Codec::g726});
}

Descriptor remoteDesc(std::uint64_t id, bool muted = false) {
  const Codec codecs[] = {Codec::g711u};
  return makeDescriptor(DescriptorId{id}, MediaAddress::parse("10.0.9.9", 5900),
                        muted ? std::span<const Codec>{} : std::span<const Codec>{codecs},
                        muted);
}

// Deliver a signal to the slot and run it through the goal, collecting output.
template <typename Goal>
Outbox deliverVia(Goal& goal, SlotEndpoint& slot, const Signal& signal) {
  Outbox out;
  auto result = slot.deliver(signal);
  goal.onEvent(slot, result.event, out);
  return out;
}

// ---------------------------------------------------------------- openSlot

class OpenSlotTest : public ::testing::Test {
 protected:
  SlotEndpoint slot_{SlotId{1}, /*channel_initiator=*/true};
  OpenSlotGoal goal_{Medium::audio, phoneIntent(), DescriptorFactory{1}};
};

TEST_F(OpenSlotTest, AttachOnClosedSendsOpen) {
  Outbox out;
  goal_.attach(slot_, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(kindOf(out.signals()[0].signal), SignalKind::open);
  const auto& open = std::get<OpenSignal>(out.signals()[0].signal);
  EXPECT_EQ(open.medium, Medium::audio);
  EXPECT_FALSE(open.descriptor.isNoMedia());
  EXPECT_EQ(slot_.state(), ProtocolState::opening);
}

TEST_F(OpenSlotTest, OackAnswersWithSelect) {
  Outbox out;
  goal_.attach(slot_, out);
  Outbox out2 = deliverVia(goal_, slot_, OackSignal{remoteDesc(50)});
  ASSERT_EQ(out2.size(), 1u);
  const auto& select = std::get<SelectSignal>(out2.signals()[0].signal);
  EXPECT_EQ(select.selector.answersDescriptor, DescriptorId{50});
  EXPECT_EQ(select.selector.codec, Codec::g711u);
  EXPECT_EQ(slot_.state(), ProtocolState::flowing);
}

TEST_F(OpenSlotTest, RejectSetsRetryPendingAndRetryReopens) {
  Outbox out;
  goal_.attach(slot_, out);
  Outbox out2 = deliverVia(goal_, slot_, CloseSignal{});
  EXPECT_TRUE(out2.empty());
  EXPECT_TRUE(goal_.retryPending());
  EXPECT_EQ(slot_.state(), ProtocolState::closed);

  Outbox out3;
  goal_.retry(slot_, out3);
  ASSERT_EQ(out3.size(), 1u);
  EXPECT_EQ(kindOf(out3.signals()[0].signal), SignalKind::open);
  EXPECT_FALSE(goal_.retryPending());
  EXPECT_EQ(slot_.state(), ProtocolState::opening);
}

TEST_F(OpenSlotTest, RetryReusesSameDescriptor) {
  // Descriptors are idempotent: a retry re-offers the same descriptor, so
  // the model checker's state space stays finite.
  Outbox out;
  goal_.attach(slot_, out);
  const auto first = std::get<OpenSignal>(out.signals()[0].signal).descriptor.id;
  (void)deliverVia(goal_, slot_, CloseSignal{});
  Outbox out2;
  goal_.retry(slot_, out2);
  const auto second = std::get<OpenSignal>(out2.signals()[0].signal).descriptor.id;
  EXPECT_EQ(first, second);
}

TEST_F(OpenSlotTest, IncomingOpenAcceptedWithOackAndSelect) {
  // An openslot takes any opportunity toward flowing: if the far end asks
  // first, accept.
  SlotEndpoint slot{SlotId{2}, false};
  OpenSlotGoal goal{Medium::audio, phoneIntent(), DescriptorFactory{2}};
  Outbox dummy;
  // Attach on closed sends open; simulate race loss: deliver an open.
  goal.attach(slot, dummy);
  Outbox out = deliverVia(goal, slot, OpenSignal{Medium::audio, remoteDesc(60)});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(kindOf(out.signals()[0].signal), SignalKind::oack);
  EXPECT_EQ(kindOf(out.signals()[1].signal), SignalKind::select);
  EXPECT_EQ(slot.state(), ProtocolState::flowing);
}

TEST_F(OpenSlotTest, DescribeAnsweredWithSelect) {
  Outbox out;
  goal_.attach(slot_, out);
  (void)deliverVia(goal_, slot_, OackSignal{remoteDesc(50)});
  Outbox out2 = deliverVia(goal_, slot_, DescribeSignal{remoteDesc(51, true)});
  ASSERT_EQ(out2.size(), 1u);
  const auto& select = std::get<SelectSignal>(out2.signals()[0].signal);
  EXPECT_EQ(select.selector.answersDescriptor, DescriptorId{51});
  // noMedia descriptor -> noMedia selector.
  EXPECT_TRUE(select.selector.isNoMedia());
}

TEST_F(OpenSlotTest, MuteOutSendsNewSelector) {
  Outbox out;
  goal_.attach(slot_, out);
  (void)deliverVia(goal_, slot_, OackSignal{remoteDesc(50)});
  Outbox out2;
  goal_.setMute(false, true, slot_, out2);
  ASSERT_EQ(out2.size(), 1u);
  const auto& select = std::get<SelectSignal>(out2.signals()[0].signal);
  EXPECT_TRUE(select.selector.isNoMedia());
}

TEST_F(OpenSlotTest, MuteInSendsNewDescriptor) {
  Outbox out;
  goal_.attach(slot_, out);
  (void)deliverVia(goal_, slot_, OackSignal{remoteDesc(50)});
  Outbox out2;
  goal_.setMute(true, false, slot_, out2);
  ASSERT_EQ(out2.size(), 1u);
  const auto& describe = std::get<DescribeSignal>(out2.signals()[0].signal);
  EXPECT_TRUE(describe.descriptor.isNoMedia());
}

TEST_F(OpenSlotTest, MuteChangeBeforeFlowingDefersSignals) {
  Outbox out;
  goal_.attach(slot_, out);  // opening
  Outbox out2;
  goal_.setMute(true, true, slot_, out2);
  EXPECT_TRUE(out2.empty());  // nothing on the wire yet
  EXPECT_TRUE(goal_.intent().muteIn);
}

TEST_F(OpenSlotTest, MuteChangeMintsFreshDescriptorId) {
  Outbox out;
  goal_.attach(slot_, out);
  const auto first = std::get<OpenSignal>(out.signals()[0].signal).descriptor.id;
  (void)deliverVia(goal_, slot_, OackSignal{remoteDesc(50)});
  Outbox out2;
  goal_.setMute(true, false, slot_, out2);
  const auto second = std::get<DescribeSignal>(out2.signals()[0].signal).descriptor.id;
  EXPECT_NE(first, second);
}

TEST_F(OpenSlotTest, ServerIntentOpensMuted) {
  // A goal in an application server mutes both directions (Section IV-A).
  SlotEndpoint slot{SlotId{3}, true};
  OpenSlotGoal goal{Medium::audio, MediaIntent::server(), DescriptorFactory{3}};
  Outbox out;
  goal.attach(slot, out);
  const auto& open = std::get<OpenSignal>(out.signals()[0].signal);
  EXPECT_TRUE(open.descriptor.isNoMedia());

  Outbox out2 = deliverVia(goal, slot, OackSignal{remoteDesc(61)});
  const auto& select = std::get<SelectSignal>(out2.signals()[0].signal);
  EXPECT_TRUE(select.selector.isNoMedia());
}

// --------------------------------------------------------------- closeSlot

class CloseSlotTest : public ::testing::Test {
 protected:
  SlotEndpoint slot_{SlotId{1}, true};
  CloseSlotGoal goal_;
};

TEST_F(CloseSlotTest, AttachOnClosedDoesNothing) {
  Outbox out;
  goal_.attach(slot_, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(slot_.state(), ProtocolState::closed);
}

TEST_F(CloseSlotTest, AttachOnFlowingSendsClose) {
  (void)slot_.sendOpen(Medium::audio, remoteDesc(1));
  (void)slot_.deliver(OackSignal{remoteDesc(2)});
  Outbox out;
  goal_.attach(slot_, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(kindOf(out.signals()[0].signal), SignalKind::close);
  EXPECT_EQ(slot_.state(), ProtocolState::closing);
}

TEST_F(CloseSlotTest, AttachOnOpeningSendsClose) {
  (void)slot_.sendOpen(Medium::audio, remoteDesc(1));
  Outbox out;
  goal_.attach(slot_, out);
  ASSERT_EQ(out.size(), 1u);
  EXPECT_EQ(kindOf(out.signals()[0].signal), SignalKind::close);
}

TEST_F(CloseSlotTest, RejectsIncomingOpenImmediately) {
  Outbox out;
  goal_.attach(slot_, out);
  Outbox out2 = deliverVia(goal_, slot_, OpenSignal{Medium::audio, remoteDesc(3)});
  ASSERT_EQ(out2.size(), 1u);
  EXPECT_EQ(kindOf(out2.signals()[0].signal), SignalKind::close);
  EXPECT_EQ(slot_.state(), ProtocolState::closing);
}

TEST_F(CloseSlotTest, CloseackCompletesAndStaysClosed) {
  (void)slot_.sendOpen(Medium::audio, remoteDesc(1));
  Outbox out;
  goal_.attach(slot_, out);
  Outbox out2 = deliverVia(goal_, slot_, CloseAckSignal{});
  EXPECT_TRUE(out2.empty());
  EXPECT_EQ(slot_.state(), ProtocolState::closed);
}

TEST_F(CloseSlotTest, PeerCloseNeedsNoGoalAction) {
  (void)slot_.deliver(OpenSignal{Medium::audio, remoteDesc(1)});
  // Attach rejects the pending open...
  Outbox out;
  goal_.attach(slot_, out);
  EXPECT_EQ(slot_.state(), ProtocolState::closing);
  // ...and a crossing close from the peer is absorbed by the FSM.
  Outbox out2 = deliverVia(goal_, slot_, CloseSignal{});
  EXPECT_TRUE(out2.empty());
}

// ---------------------------------------------------------------- holdSlot

class HoldSlotTest : public ::testing::Test {
 protected:
  SlotEndpoint slot_{SlotId{1}, false};
  HoldSlotGoal goal_{phoneIntent(), DescriptorFactory{4}};
};

TEST_F(HoldSlotTest, AttachOnClosedWaits) {
  Outbox out;
  goal_.attach(slot_, out);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(slot_.state(), ProtocolState::closed);
}

TEST_F(HoldSlotTest, AcceptsIncomingOpen) {
  Outbox out;
  goal_.attach(slot_, out);
  Outbox out2 = deliverVia(goal_, slot_, OpenSignal{Medium::audio, remoteDesc(5)});
  ASSERT_EQ(out2.size(), 2u);
  EXPECT_EQ(kindOf(out2.signals()[0].signal), SignalKind::oack);
  EXPECT_EQ(kindOf(out2.signals()[1].signal), SignalKind::select);
  EXPECT_EQ(slot_.state(), ProtocolState::flowing);
}

TEST_F(HoldSlotTest, AttachOnOpenedAcceptsImmediately) {
  (void)slot_.deliver(OpenSignal{Medium::audio, remoteDesc(5)});
  Outbox out;
  goal_.attach(slot_, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(kindOf(out.signals()[0].signal), SignalKind::oack);
  EXPECT_EQ(slot_.state(), ProtocolState::flowing);
}

TEST_F(HoldSlotTest, StaysClosedAfterPeerClose) {
  Outbox out;
  goal_.attach(slot_, out);
  (void)deliverVia(goal_, slot_, OpenSignal{Medium::audio, remoteDesc(5)});
  Outbox out2 = deliverVia(goal_, slot_, CloseSignal{});
  EXPECT_TRUE(out2.empty());  // no re-open attempt
  EXPECT_EQ(slot_.state(), ProtocolState::closed);
}

TEST_F(HoldSlotTest, ReacceptsAfterReopen) {
  Outbox out;
  goal_.attach(slot_, out);
  (void)deliverVia(goal_, slot_, OpenSignal{Medium::audio, remoteDesc(5)});
  (void)deliverVia(goal_, slot_, CloseSignal{});
  Outbox out2 = deliverVia(goal_, slot_, OpenSignal{Medium::audio, remoteDesc(6)});
  ASSERT_EQ(out2.size(), 2u);
  EXPECT_EQ(kindOf(out2.signals()[0].signal), SignalKind::oack);
  EXPECT_EQ(slot_.state(), ProtocolState::flowing);
}

TEST_F(HoldSlotTest, AttachOnFlowingRefreshesDescriptorAndSelector) {
  // Gaining control of a flowing slot (e.g. after another goal) re-asserts
  // this party's description and re-answers the remote one.
  (void)slot_.deliver(OpenSignal{Medium::audio, remoteDesc(5)});
  (void)slot_.sendOack(remoteDesc(90));  // previous goal accepted
  Outbox out;
  goal_.attach(slot_, out);
  ASSERT_EQ(out.size(), 2u);
  EXPECT_EQ(kindOf(out.signals()[0].signal), SignalKind::describe);
  EXPECT_EQ(kindOf(out.signals()[1].signal), SignalKind::select);
}

TEST_F(HoldSlotTest, AnswersDescribe) {
  Outbox out;
  goal_.attach(slot_, out);
  (void)deliverVia(goal_, slot_, OpenSignal{Medium::audio, remoteDesc(5)});
  Outbox out2 = deliverVia(goal_, slot_, DescribeSignal{remoteDesc(7)});
  ASSERT_EQ(out2.size(), 1u);
  const auto& select = std::get<SelectSignal>(out2.signals()[0].signal);
  EXPECT_EQ(select.selector.answersDescriptor, DescriptorId{7});
}

// ------------------------------------------------------- EndpointGoal glue

TEST(EndpointGoalVariant, KindDispatch) {
  EndpointGoal open = OpenSlotGoal{Medium::audio, phoneIntent(), DescriptorFactory{1}};
  EndpointGoal close = CloseSlotGoal{};
  EndpointGoal hold = HoldSlotGoal{phoneIntent(), DescriptorFactory{2}};
  EXPECT_EQ(kindOf(open), GoalKind::openSlot);
  EXPECT_EQ(kindOf(close), GoalKind::closeSlot);
  EXPECT_EQ(kindOf(hold), GoalKind::holdSlot);
}

TEST(EndpointGoalVariant, RetryOnlyForOpenSlot) {
  EndpointGoal close = CloseSlotGoal{};
  EXPECT_FALSE(retryPending(close));
  SlotEndpoint slot{SlotId{1}, true};
  Outbox out;
  retry(close, slot, out);  // no-op, no crash
  EXPECT_TRUE(out.empty());
}

TEST(EndpointGoalVariant, SetMuteNoopForCloseSlot) {
  EndpointGoal close = CloseSlotGoal{};
  SlotEndpoint slot{SlotId{1}, true};
  Outbox out;
  setMute(close, true, true, slot, out);
  EXPECT_TRUE(out.empty());
}

TEST(EndpointGoalVariant, CanonicalizeDistinguishesGoals) {
  EndpointGoal a = CloseSlotGoal{};
  EndpointGoal b = HoldSlotGoal{phoneIntent(), DescriptorFactory{1}};
  ByteWriter wa, wb;
  canonicalize(a, wa);
  canonicalize(b, wb);
  EXPECT_NE(fnv1a(wa.bytes()), fnv1a(wb.bytes()));
}

}  // namespace
}  // namespace cmc
