// Tests for the discrete-event simulator, timing model, and Box runtime.
#include <gtest/gtest.h>

#include "endpoints/user_device.hpp"
#include "media/network.hpp"
#include "sim/simulator.hpp"

namespace cmc {
namespace {

using namespace literals;

TEST(EventLoopTest, OrdersByTime) {
  EventLoop loop;
  std::vector<int> order;
  loop.schedule(30_ms, [&] { order.push_back(3); });
  loop.schedule(10_ms, [&] { order.push_back(1); });
  loop.schedule(20_ms, [&] { order.push_back(2); });
  EXPECT_TRUE(loop.runUntilIdle());
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now().millis(), 30.0);
}

TEST(EventLoopTest, EqualTimesFifo) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.schedule(10_ms, [&order, i] { order.push_back(i); });
  }
  loop.runUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, NestedScheduling) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(1_ms, [&] {
    ++fired;
    loop.schedule(1_ms, [&] { ++fired; });
  });
  loop.runUntilIdle();
  EXPECT_EQ(fired, 2);
  EXPECT_EQ(loop.now().millis(), 2.0);
}

TEST(EventLoopTest, HorizonStopsLoop) {
  EventLoop loop;
  std::function<void()> rearm = [&] { loop.schedule(10_ms, rearm); };
  rearm();
  EXPECT_FALSE(loop.runUntilIdle(100_ms));
}

TEST(EventLoopTest, HorizonIsRelativeToNow) {
  // Regression: the horizon used to be computed from the epoch, so once
  // virtual time passed it, every later call returned false immediately
  // without running a single event. Each call must grant `horizon` more
  // virtual time from the current now().
  EventLoop loop;
  int fired = 0;
  std::function<void()> rearm = [&] {
    ++fired;
    loop.schedule(10_ms, rearm);
  };
  loop.schedule(10_ms, rearm);
  EXPECT_FALSE(loop.runUntilIdle(100_ms));
  const int fired_first = fired;
  const double now_first = loop.now().millis();
  EXPECT_EQ(now_first, 100.0);
  EXPECT_FALSE(loop.runUntilIdle(100_ms));
  EXPECT_GT(fired, fired_first) << "second call ran no events";
  EXPECT_EQ(loop.now().millis(), now_first + 100.0);
}

TEST(EventLoopTest, RunUntilLeavesLaterEvents) {
  EventLoop loop;
  int fired = 0;
  loop.schedule(10_ms, [&] { ++fired; });
  loop.schedule(50_ms, [&] { ++fired; });
  loop.runUntil(SimTime{} + 20_ms);
  EXPECT_EQ(fired, 1);
  EXPECT_EQ(loop.pending(), 1u);
  EXPECT_EQ(loop.now().millis(), 20.0);
}

TEST(TimingModelTest, PaperDefaults) {
  auto t = TimingModel::paperDefaults();
  EXPECT_EQ(t.network, 34_ms);
  EXPECT_EQ(t.processing, 20_ms);
}

TEST(TimingModelTest, JitterBounded) {
  TimingModel t;
  t.network_jitter = 0.5;
  Rng rng{3};
  for (int i = 0; i < 200; ++i) {
    auto n = t.sampleNetwork(rng);
    EXPECT_GE(n, 17_ms);
    EXPECT_LE(n, 51_ms);
  }
}

TEST(TimingModelTest, FullJitterNeverSamplesNonPositiveDelay) {
  // Regression: at network_jitter = 1.0 the factor can reach 0 (or round
  // below it), producing a zero-length delivery that the event loop would
  // run in the same instant as the send. The sample must clamp to >= 1 µs.
  TimingModel t;
  t.network_jitter = 1.0;
  Rng rng{11};
  SimDuration smallest = t.network;
  for (int i = 0; i < 20000; ++i) {
    const auto n = t.sampleNetwork(rng);
    EXPECT_GT(n.count(), 0) << "sampled a non-positive network delay";
    EXPECT_LE(n, 2 * t.network);
    smallest = std::min(smallest, n);
  }
  // The distribution genuinely reaches the clamp region (sub-millisecond),
  // so the assertion above is not vacuous.
  EXPECT_LT(smallest, 1_ms);
}

// ------------------------------------------------------------- simulator

class TwoPhones : public ::testing::Test {
 protected:
  TwoPhones()
      : sim_(TimingModel::paperDefaults(), 42),
        media_(sim_.mediaNetwork()),
        a_(sim_.addBox<UserDeviceBox>("A", media_, sim_.loop(),
                                      MediaAddress::parse("10.0.0.1", 5000))),
        b_(sim_.addBox<UserDeviceBox>("B", media_, sim_.loop(),
                                      MediaAddress::parse("10.0.0.2", 5000))) {}

  Simulator sim_;
  MediaNetwork& media_;
  UserDeviceBox& a_;
  UserDeviceBox& b_;
};

TEST_F(TwoPhones, DirectCallEstablishesTwoWayMedia) {
  sim_.inject("A", [](Box& box) {
    static_cast<UserDeviceBox&>(box).placeCall("B");
  });
  sim_.runFor(2_s);
  EXPECT_TRUE(a_.inCall());
  EXPECT_TRUE(b_.inCall());
  EXPECT_TRUE(a_.media().hears(b_.media().id()));
  EXPECT_TRUE(b_.media().hears(a_.media().id()));
}

TEST_F(TwoPhones, HangUpStopsMedia) {
  sim_.inject("A", [](Box& box) {
    static_cast<UserDeviceBox&>(box).placeCall("B");
  });
  sim_.runFor(2_s);
  ASSERT_TRUE(a_.inCall());
  sim_.inject("A", [](Box& box) { static_cast<UserDeviceBox&>(box).hangUp(); });
  sim_.runFor(1_s);
  EXPECT_FALSE(a_.inCall());
  EXPECT_FALSE(a_.media().sendingNow());
  const auto received_at_cutoff = b_.media().packetsReceived();
  sim_.runFor(1_s);
  // B's device learned of the teardown too; at most a couple of packets
  // were in flight at cutoff.
  EXPECT_LE(b_.media().packetsReceived(), received_at_cutoff + 3);
}

TEST_F(TwoPhones, MuteOutIsOneWay) {
  sim_.inject("A", [](Box& box) {
    static_cast<UserDeviceBox&>(box).placeCall("B");
  });
  sim_.runFor(2_s);
  sim_.inject("A", [](Box& box) {
    static_cast<UserDeviceBox&>(box).setMute(false, /*muteOut=*/true);
  });
  sim_.runFor(1_s);
  a_.media().resetStats();
  b_.media().resetStats();
  sim_.runFor(1_s);
  EXPECT_EQ(b_.media().packetsReceived(), 0u);  // A is muted
  EXPECT_GT(a_.media().packetsReceived(), 10u);  // B still talks
}

TEST_F(TwoPhones, ManualAcceptRingsFirst) {
  auto& c = sim_.addBox<UserDeviceBox>("C", media_, sim_.loop(),
                                       MediaAddress::parse("10.0.0.3", 5000),
                                       UserDeviceBox::AcceptPolicy::manual);
  sim_.inject("A", [](Box& box) {
    static_cast<UserDeviceBox&>(box).placeCall("C");
  });
  sim_.runFor(1_s);
  EXPECT_TRUE(c.ringing());
  EXPECT_FALSE(c.inCall());
  sim_.inject("C", [](Box& box) {
    static_cast<UserDeviceBox&>(box).acceptCall();
  });
  sim_.runFor(1_s);
  EXPECT_TRUE(c.inCall());
  EXPECT_TRUE(a_.inCall());
}

TEST_F(TwoPhones, DeclineLeavesCallerRetrying) {
  auto& c = sim_.addBox<UserDeviceBox>("C", media_, sim_.loop(),
                                       MediaAddress::parse("10.0.0.3", 5000),
                                       UserDeviceBox::AcceptPolicy::manual);
  sim_.inject("A", [](Box& box) {
    static_cast<UserDeviceBox&>(box).placeCall("C");
  });
  sim_.runFor(1_s);
  sim_.inject("C", [](Box& box) {
    static_cast<UserDeviceBox&>(box).declineCall();
  });
  sim_.runFor(500_ms);
  EXPECT_FALSE(c.inCall());
  EXPECT_FALSE(a_.inCall());
  EXPECT_FALSE(a_.media().sendingNow());
}

TEST_F(TwoPhones, SignalCountsAreTracked) {
  sim_.inject("A", [](Box& box) {
    static_cast<UserDeviceBox&>(box).placeCall("B");
  });
  sim_.runFor(2_s);
  // open, oack, select, select at minimum.
  EXPECT_GE(sim_.signalsDelivered(), 4u);
}

TEST_F(TwoPhones, SetupLatencyMatchesTimingModel) {
  // Direct call: A's open computed (c), travels (n), B processes and
  // answers (c), oack travels (n), A processes (c). B can transmit right
  // after its oack+select: that is c + n + c after injection... measured
  // from the injection stimulus completing. We check A hears B strictly
  // before 10x that bound and media started after the signaling minimum.
  sim_.inject("A", [](Box& box) {
    static_cast<UserDeviceBox&>(box).placeCall("B");
  });
  sim_.runFor(108_ms);  // c (inject) + c (open compute ... bundled) + n + c
  // B has just answered; B's media starts at its first tick after enable.
  EXPECT_TRUE(b_.media().sendingNow());
  EXPECT_FALSE(a_.media().sendingNow() &&
               a_.media().packetsReceived() > 0);  // nothing heard yet
}

}  // namespace
}  // namespace cmc
