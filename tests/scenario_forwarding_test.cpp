// Feature-chaining tests (the DFC motivation, paper Section II-B): call
// forwarding boxes composed in series, with media following the call
// wherever it lands — no feature aware of the others.
#include <gtest/gtest.h>

#include "apps/forwarding.hpp"
#include "endpoints/user_device.hpp"
#include "sim/simulator.hpp"

namespace cmc {
namespace {

using namespace literals;

class ForwardingScenario : public ::testing::Test {
 protected:
  ForwardingScenario() : sim_(TimingModel::paperDefaults(), 37) {}

  UserDeviceBox& phone(const std::string& name, int octet,
                       UserDeviceBox::AcceptPolicy policy =
                           UserDeviceBox::AcceptPolicy::autoAccept) {
    return sim_.addBox<UserDeviceBox>(
        name, sim_.mediaNetwork(), sim_.loop(),
        MediaAddress::parse("10.5.1." + std::to_string(octet), 5000), policy);
  }

  Simulator sim_;
};

TEST_F(ForwardingScenario, CallReachesServedUserWhenAvailable) {
  auto& a = phone("A", 1);
  auto& b = phone("B", 2);
  sim_.addBox<CallForwardingBox>("fwdB", "B", "C");
  phone("C", 3);
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("fwdB"); });
  sim_.runFor(2_s);
  EXPECT_TRUE(a.media().hears(b.media().id()));
  EXPECT_TRUE(b.media().hears(a.media().id()));
}

TEST_F(ForwardingScenario, BusyUserForwardsToTarget) {
  auto& a = phone("A", 1);
  auto& b = phone("B", 2);
  auto& c = phone("C", 3);
  auto& fwd = sim_.addBox<CallForwardingBox>("fwdB", "B", "C");
  sim_.inject("B", [](Box& bx) { static_cast<UserDeviceBox&>(bx).setBusy(true); });
  sim_.runFor(100_ms);
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("fwdB"); });
  sim_.runFor(3_s);
  EXPECT_TRUE(fwd.forwarded());
  EXPECT_TRUE(a.media().hears(c.media().id()));
  EXPECT_TRUE(c.media().hears(a.media().id()));
  EXPECT_FALSE(b.media().hears(a.media().id()));
}

TEST_F(ForwardingScenario, AlwaysForwardSkipsUser) {
  auto& a = phone("A", 1);
  auto& b = phone("B", 2);
  auto& c = phone("C", 3);
  sim_.addBox<CallForwardingBox>("fwdB", "B", "C",
                                 CallForwardingBox::Mode::always);
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("fwdB"); });
  sim_.runFor(2_s);
  EXPECT_TRUE(a.media().hears(c.media().id()));
  EXPECT_FALSE(b.media().hears(a.media().id()));
}

TEST_F(ForwardingScenario, TwoChainedForwardingBoxes) {
  // A -> fwdB (busy B -> fwdC) -> fwdC (busy C -> D) -> D: media must flow
  // A <-> D through two feature boxes neither of which knows the other.
  auto& a = phone("A", 1);
  phone("B", 2);
  phone("C", 3);
  auto& d = phone("D", 4);
  sim_.addBox<CallForwardingBox>("fwdB", "B", "fwdC");
  sim_.addBox<CallForwardingBox>("fwdC", "C", "D");
  sim_.inject("B", [](Box& bx) { static_cast<UserDeviceBox&>(bx).setBusy(true); });
  sim_.inject("C", [](Box& bx) { static_cast<UserDeviceBox&>(bx).setBusy(true); });
  sim_.runFor(100_ms);
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("fwdB"); });
  sim_.runFor(4_s);
  EXPECT_TRUE(a.media().hears(d.media().id()));
  EXPECT_TRUE(d.media().hears(a.media().id()));
}

TEST_F(ForwardingScenario, CalleeHangupReleasesCaller) {
  auto& a = phone("A", 1);
  phone("B", 2);
  phone("C", 3);
  sim_.addBox<CallForwardingBox>("fwdB", "B", "C");
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("fwdB"); });
  sim_.runFor(2_s);
  ASSERT_TRUE(a.inCall());
  sim_.inject("B", [](Box& bx) { static_cast<UserDeviceBox&>(bx).hangUp(); });
  sim_.runFor(2_s);
  EXPECT_FALSE(a.inCall());
  EXPECT_FALSE(a.media().sendingNow());
}

TEST_F(ForwardingScenario, CallerHangupFoldsChain) {
  auto& a = phone("A", 1);
  auto& b = phone("B", 2);
  phone("C", 3);
  sim_.addBox<CallForwardingBox>("fwdB", "B", "C");
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).placeCall("fwdB"); });
  sim_.runFor(2_s);
  ASSERT_TRUE(b.inCall());
  sim_.inject("A", [](Box& bx) { static_cast<UserDeviceBox&>(bx).hangUp(); });
  sim_.runFor(2_s);
  EXPECT_FALSE(b.inCall());
  EXPECT_FALSE(b.media().sendingNow());
}

}  // namespace
}  // namespace cmc
